package store

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
	"maras/internal/trend"
)

// Span names recorded on the request trace (see obs.StartSpan): a
// registry load, the disk decode inside a cold load, a directory
// rescan, and the cross-quarter trend assembly.
const (
	SpanLoad     = "store_load"
	SpanDecode   = "snapshot_decode"
	SpanRescan   = "store_rescan"
	SpanAssemble = "trend_assemble"
)

// RegistryOptions configures a snapshot registry.
type RegistryOptions struct {
	// MaxOpen bounds how many quarters are held rehydrated in memory
	// at once (LRU eviction beyond it). 0 means DefaultMaxOpen.
	MaxOpen int
	// Metrics, when non-nil, receives load latency, open-quarter
	// gauge, and cache hit/miss/eviction counts.
	Metrics *obs.StoreMetrics
	// Tracer, when non-nil, records a "snapshot_load" stage per disk
	// load — the counterpart of the mining stages, so a serving
	// process can prove a warm quarter involved zero mining.
	Tracer *obs.Tracer
	// OnEvict, when non-nil, is called (outside the registry lock)
	// with the label of each quarter the LRU drops, so callers holding
	// derived state (route handlers, render caches) can drop theirs.
	OnEvict func(label string)
	// Auditor, when non-nil, supplies the thresholds for quality and
	// drift evaluation (QualityContext/DriftContext) and receives
	// their findings as audit events. A nil auditor evaluates with
	// defaults and records nothing.
	Auditor *audit.Auditor
	// Resilience, when non-nil, puts snapshot loads behind per-quarter
	// circuit breakers with transient-failure retry, and enables
	// LoadResilient's stale serving (see ResilienceOptions). Nil keeps
	// the registry's original fail-on-first-error behavior.
	Resilience *ResilienceOptions
	// Wide, when non-nil, receives one wide event per cold load (disk
	// decode) — kind store_load, quarter, duration, bytes, outcome —
	// linked to the paying request's trace when one is active. LRU hits
	// emit nothing; they are visible on the request event's cache dim.
	Wide *wide.Ring
	// OnLoad, when non-nil, is called after every successful cold load
	// (disk decode) with the freshly rehydrated analysis — once per
	// decode, not per LRU hit, so re-serving a resident quarter costs
	// nothing extra. It runs on the loading goroutine, outside the
	// registry lock, with the load's context (so callbacks can attach
	// spans to the request trace that paid for the decode). Consumers
	// reacting to quarter content changes (the watch evaluator) hang
	// off this hook.
	OnLoad func(ctx context.Context, label string, a *core.Analysis)
}

// DefaultMaxOpen is the open-quarter LRU capacity when
// RegistryOptions.MaxOpen is zero.
const DefaultMaxOpen = 4

// StageSnapshotLoad is the tracer stage name recorded per disk load.
const StageSnapshotLoad = "snapshot_load"

// Registry manages a directory of per-quarter snapshot files
// (2014Q1.maras, 2014Q2.maras, ...): discovery, lazy loading with an
// LRU of open quarters, atomic writes, and cross-quarter timeline
// queries. It is safe for concurrent use.
type Registry struct {
	dir     string
	maxOpen int
	metrics *obs.StoreMetrics
	tracer  *obs.Tracer
	onEvict func(string)
	onLoad  func(context.Context, string, *core.Analysis)
	auditor *audit.Auditor
	wide    *wide.Ring

	mu       sync.Mutex
	quarters []string          // sorted labels discovered on disk
	open     map[string]*entry // label -> resident entry
	lruOrder []string          // least-recent first

	// quality caches each quarter's metric-only quality report. The
	// reports are tiny, so unlike the rehydrated analyses they survive
	// LRU eviction — trailing-quarter evaluation never forces old
	// quarters back into memory twice. Guarded by qmu (the reports are
	// published from inside a load, outside r.mu).
	qmu     sync.Mutex
	quality map[string]*audit.QualityReport

	// trendCached memoizes the cross-quarter trend assembly keyed by
	// the quarter list it was built from; Save and Refresh invalidate
	// it. Guarded by trendMu, held across the (expensive) assembly so
	// concurrent drift/timeline requests share one computation.
	trendMu     sync.Mutex
	trendKey    string
	trendCached *trend.Analysis

	// res is the resilience machinery (breakers, stale cache,
	// quarantine); nil unless RegistryOptions.Resilience was set.
	res *resState

	// peerFetch is the replica read-failover hook (SetPeerFetch);
	// guarded by mu, nil when this registry has no replica peers.
	peerFetch func(context.Context, string) (*core.Analysis, error)
}

// entry is one resident (or loading) quarter. The sync.Once decouples
// the disk read from the registry lock: concurrent loads of the same
// quarter share one read, while loads of different quarters proceed
// in parallel.
type entry struct {
	once sync.Once
	a    *core.Analysis
	q    *audit.QualityReport
	err  error
}

// OpenRegistry scans dir for quarter snapshots and returns a registry
// over them. The directory may be empty (quarters can be saved into
// it later); a missing directory is an error.
func OpenRegistry(dir string, opts RegistryOptions) (*Registry, error) {
	r := &Registry{
		dir:     dir,
		maxOpen: opts.MaxOpen,
		metrics: opts.Metrics,
		tracer:  opts.Tracer,
		onEvict: opts.OnEvict,
		onLoad:  opts.OnLoad,
		auditor: opts.Auditor,
		wide:    opts.Wide,
		open:    map[string]*entry{},
		quality: map[string]*audit.QualityReport{},
	}
	if r.maxOpen <= 0 {
		r.maxOpen = DefaultMaxOpen
	}
	if opts.Resilience != nil {
		r.initResilience(*opts.Resilience)
	}
	r.sweepOrphans()
	if err := r.Refresh(); err != nil {
		return nil, err
	}
	return r, nil
}

// Refresh rescans the directory for snapshot files — cheap, so a
// serving process can pick up quarters dropped in by a miner without
// restarting.
func (r *Registry) Refresh() error { return r.RefreshContext(context.Background()) }

// RefreshContext is Refresh with a request context: when the context
// carries an active trace span, the rescan records a child span so a
// request that paid for a directory walk shows it.
func (r *Registry) RefreshContext(ctx context.Context) error {
	_, span := obs.StartSpan(ctx, SpanRescan)
	defer span.End()
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		span.SetAttr("error", err.Error())
		return fmt.Errorf("store: %w", err)
	}
	var labels []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, Ext) {
			continue
		}
		labels = append(labels, strings.TrimSuffix(name, Ext))
	}
	sort.Strings(labels)
	span.SetInt("quarters", int64(len(labels)))
	r.mu.Lock()
	changed := !slicesEqual(r.quarters, labels)
	r.quarters = labels
	r.mu.Unlock()
	if changed {
		// The quarter set moved under us: the cached trend analysis is
		// stale, and quality reports of removed quarters are orphans.
		r.invalidateTrend()
		onDisk := make(map[string]bool, len(labels))
		for _, l := range labels {
			onDisk[l] = true
		}
		r.qmu.Lock()
		for l := range r.quality {
			if !onDisk[l] {
				delete(r.quality, l)
			}
		}
		r.qmu.Unlock()
	}
	return nil
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Dir returns the directory the registry serves from.
func (r *Registry) Dir() string { return r.dir }

// Quarters returns the sorted labels of every snapshot on disk.
func (r *Registry) Quarters() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string{}, r.quarters...)
}

// Latest returns the most recent quarter label (labels sort
// chronologically: "2014Q1" < "2014Q2" < "2015Q1"), or "" when the
// store is empty.
func (r *Registry) Latest() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.quarters) == 0 {
		return ""
	}
	return r.quarters[len(r.quarters)-1]
}

// Has reports whether label has a snapshot on disk.
func (r *Registry) Has(label string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, q := range r.quarters {
		if q == label {
			return true
		}
	}
	return false
}

// Path returns the snapshot file path for label.
func (r *Registry) Path(label string) string {
	return filepath.Join(r.dir, label+Ext)
}

// Load returns the rehydrated analysis for label, reading it from
// disk on first touch and serving every later request from the
// open-quarter LRU. Serving a warm quarter does zero disk I/O and
// zero mining.
func (r *Registry) Load(label string) (*core.Analysis, error) {
	return r.LoadContext(context.Background(), label)
}

// LoadContext is Load with a request context. When the context
// carries an active trace span, the load records a "store_load" child
// span (attr cache=lru_hit|lru_miss) and — for the caller that
// actually performs the disk read — a nested "snapshot_decode" span,
// so a request's trace distinguishes a warm LRU hit from a cold
// decode.
func (r *Registry) LoadContext(ctx context.Context, label string) (*core.Analysis, error) {
	if !r.Has(label) {
		return nil, fmt.Errorf("store: quarter %q not in %s", label, r.dir)
	}
	ctx, span := obs.StartSpan(ctx, SpanLoad)
	defer span.End()
	span.SetAttr("quarter", label)

	r.mu.Lock()
	e, resident := r.open[label]
	if !resident {
		e = &entry{}
		r.open[label] = e
	}
	r.touchLocked(label)
	evicted := r.evictLocked()
	r.mu.Unlock()

	m := r.metrics
	if resident {
		span.SetAttr("cache", "lru_hit")
		if m != nil {
			m.Hits.Inc()
		}
	} else {
		span.SetAttr("cache", "lru_miss")
		if m != nil {
			m.Misses.Inc()
		}
	}
	for _, l := range evicted {
		if m != nil {
			m.Evictions.Inc()
		}
		if r.onEvict != nil {
			r.onEvict(l)
		}
	}

	e.once.Do(func() {
		// The decode runs under op=store_load so continuous-profiling
		// captures attribute cold-load CPU (CRC sweep + snapshot
		// decode) separately from request handling.
		prof.Do(ctx, func(ctx context.Context) {
			st := r.tracer.StartStage(StageSnapshotLoad)
			_, dspan := obs.StartSpan(ctx, SpanDecode)
			defer dspan.End()
			start := time.Now()
			path := r.Path(label)
			snap, err := r.openResilient(ctx, label, path, dspan)
			if err != nil {
				e.err = err
				dspan.SetAttr("error", err.Error())
				st.End()
				r.wide.Emit(wide.Event{
					Kind: wide.KindStoreLoad, Quarter: label, Status: 500,
					Duration: time.Since(start), Trace: obs.ActiveSpan(ctx).TraceID(),
				})
				return
			}
			e.a = snap.Analysis
			e.q = snap.Quality
			if snap.Quality != nil {
				r.qmu.Lock()
				r.quality[label] = snap.Quality
				r.qmu.Unlock()
			}
			if m != nil {
				m.LoadSeconds.Observe(time.Since(start).Seconds())
			}
			var loadBytes int64
			if fi, statErr := os.Stat(path); statErr == nil {
				loadBytes = fi.Size()
				if m != nil {
					m.BytesRead.Add(loadBytes)
				}
				dspan.SetInt("bytes", loadBytes)
			}
			dspan.SetInt("signals", int64(len(snap.Analysis.Signals)))
			st.Count("signals", int64(len(snap.Analysis.Signals)))
			st.Count("reports", int64(snap.Analysis.Stats.Reports))
			st.End()
			r.wide.Emit(wide.Event{
				Kind: wide.KindStoreLoad, Quarter: label, Status: 200,
				Duration: time.Since(start), Bytes: loadBytes,
				Cache: "lru_miss", Trace: obs.ActiveSpan(ctx).TraceID(),
			})
			if r.onLoad != nil {
				r.onLoad(ctx, label, snap.Analysis)
			}
		}, prof.LabelOp, "store_load", "quarter", label)
	})
	if e.err != nil {
		// Drop the failed entry so a repaired file can be retried.
		r.dropLocked(label, e)
		return nil, e.err
	}
	return e.a, nil
}

// Save writes label's analysis into the store atomically
// (write-then-rename) and makes it immediately loadable. Any resident
// copy of the same label is invalidated so the next Load sees the new
// bytes.
func (r *Registry) Save(label string, a *core.Analysis) error {
	if err := WriteFile(r.Path(label), label, a); err != nil {
		return err
	}
	r.noteWritten(label)
	return nil
}

// InstallBytes atomically installs raw snapshot bytes — fetched from
// a replica peer — under label, verifying the envelope first so
// corrupt peer bytes never reach disk. The write shares WriteFile's
// temp-file pattern, so a crash mid-install leaves only an orphan the
// next OpenRegistry sweep reclaims; on success the label is
// immediately loadable, exactly as after Save.
func (r *Registry) InstallBytes(label string, data []byte) error {
	if err := CheckBytes(data); err != nil {
		return fmt.Errorf("store: installing %q: %w", label, err)
	}
	err := writeFileAtomic(r.Path(label), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return err
	}
	r.noteWritten(label)
	return nil
}

// noteWritten records that label's bytes on disk just changed (Save or
// InstallBytes): cached derivations of the old bytes — the quarter's
// quality report, any resident analysis, the cross-quarter trend
// assembly — are dropped, and the label becomes discoverable without
// waiting for a rescan.
func (r *Registry) noteWritten(label string) {
	r.qmu.Lock()
	delete(r.quality, label)
	r.qmu.Unlock()
	r.invalidateTrend()
	r.mu.Lock()
	if e := r.open[label]; e != nil {
		delete(r.open, label)
		r.removeLRULocked(label)
	}
	found := false
	for _, q := range r.quarters {
		if q == label {
			found = true
			break
		}
	}
	if !found {
		r.quarters = append(r.quarters, label)
		sort.Strings(r.quarters)
	}
	n := int64(len(r.open))
	r.mu.Unlock()
	if r.metrics != nil {
		r.metrics.OpenQuarters.Set(n)
	}
}

// StartRescan refreshes the directory listing every interval until ctx
// ends. The first rescan fires after a uniformly random delay in
// [0, interval) and each later tick re-arms at interval ±25%, so a
// replica fleet restarted together spreads its first rescans (and the
// sync rounds they feed) instead of thundering-herding its peers in
// lockstep. A non-positive interval disables the loop.
func (r *Registry) StartRescan(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		t := time.NewTimer(time.Duration(rng.Int63n(int64(interval))))
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				// A failed rescan (directory briefly unreadable) is
				// transient; the next tick retries.
				_ = r.Refresh()
				spread := float64(interval) * 0.25
				t.Reset(time.Duration(float64(interval) - spread + 2*spread*rng.Float64()))
			}
		}
	}()
}

// Timeline replays the trajectory of one drug combination across
// every quarter in the store — the surveillance question ("when did
// this signal emerge, and how has it moved?") answered entirely from
// disk. The key is the canonical drug-combination key ("A+B", as
// knowledge.DrugKey builds). It returns the quarter labels, the
// trajectory (nil when the combination never signals), and any load
// error.
func (r *Registry) Timeline(key string) ([]string, *trend.Trajectory, error) {
	return r.TimelineContext(context.Background(), key)
}

// TimelineContext is Timeline with a request context so the per-
// quarter loads behind a timeline query appear as spans on the
// request trace.
func (r *Registry) TimelineContext(ctx context.Context, key string) ([]string, *trend.Trajectory, error) {
	ta, err := r.TrendAnalysisContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	return ta.Quarters, ta.Find(key), nil
}

// TrendAnalysis assembles the full cross-quarter trend analysis from
// the stored snapshots, loading each quarter through the LRU.
func (r *Registry) TrendAnalysis() (*trend.Analysis, error) {
	return r.TrendAnalysisContext(context.Background())
}

// TrendAnalysisContext is TrendAnalysis with a request context: the
// assembly records a "trend_assemble" span whose children are the
// per-quarter store_load spans (hit or decode), so a slow timeline
// request shows exactly which quarter paid for disk.
//
// The assembled analysis is cached against the quarter list it was
// built from (invalidated by Save and by a Refresh that changes the
// set), so repeated timeline and drift queries over an unchanged store
// assemble once. The lock is held across the assembly: concurrent
// callers share the computation instead of duplicating it.
func (r *Registry) TrendAnalysisContext(ctx context.Context) (*trend.Analysis, error) {
	labels := r.Quarters()
	if len(labels) == 0 {
		return nil, fmt.Errorf("store: no quarters in %s", r.dir)
	}
	key := strings.Join(labels, "|")
	r.trendMu.Lock()
	defer r.trendMu.Unlock()
	if r.trendCached != nil && r.trendKey == key {
		return r.trendCached, nil
	}
	ctx, span := obs.StartSpan(ctx, SpanAssemble)
	defer span.End()
	span.SetInt("quarters", int64(len(labels)))
	results := make([]*core.Analysis, len(labels))
	for i, l := range labels {
		a, err := r.LoadContext(ctx, l)
		if err != nil {
			return nil, err
		}
		results[i] = a
	}
	ta := trend.Assemble(labels, results)
	r.trendKey, r.trendCached = key, ta
	return ta, nil
}

// invalidateTrend drops the cached trend assembly.
func (r *Registry) invalidateTrend() {
	r.trendMu.Lock()
	r.trendKey, r.trendCached = "", nil
	r.trendMu.Unlock()
}

// OpenCount returns how many quarters are currently resident.
func (r *Registry) OpenCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// touchLocked moves label to the most-recent end of the LRU order.
func (r *Registry) touchLocked(label string) {
	r.removeLRULocked(label)
	r.lruOrder = append(r.lruOrder, label)
}

func (r *Registry) removeLRULocked(label string) {
	for i, l := range r.lruOrder {
		if l == label {
			r.lruOrder = append(r.lruOrder[:i], r.lruOrder[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recent quarters until the LRU fits, and
// returns the evicted labels. The gauge is updated here so it is
// consistent under the lock.
func (r *Registry) evictLocked() []string {
	var evicted []string
	for len(r.open) > r.maxOpen && len(r.lruOrder) > 0 {
		victim := r.lruOrder[0]
		r.lruOrder = r.lruOrder[1:]
		if _, ok := r.open[victim]; ok {
			delete(r.open, victim)
			evicted = append(evicted, victim)
		}
	}
	if r.metrics != nil {
		r.metrics.OpenQuarters.Set(int64(len(r.open)))
	}
	return evicted
}

// dropLocked removes a failed entry (only if it is still the resident
// one) so later loads retry the file.
func (r *Registry) dropLocked(label string, failed *entry) {
	r.mu.Lock()
	if r.open[label] == failed {
		delete(r.open, label)
		r.removeLRULocked(label)
	}
	n := int64(len(r.open))
	r.mu.Unlock()
	if r.metrics != nil {
		r.metrics.OpenQuarters.Set(n)
	}
}
