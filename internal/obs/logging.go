package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format is "text" or
// "json"; level is a name accepted by ParseLevel. The attr layout is
// shared by every binary so logs aggregate cleanly.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a level name (debug, info, warn, error — case
// insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
