package obs

import (
	"bytes"
	"log/slog"
	"math"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerSampleOnce(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, RuntimeSamplerOptions{})
	runtime.GC() // make sure at least one cycle and pause exist
	st := s.SampleOnce()
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d", st.Goroutines)
	}
	if st.HeapBytes <= 0 {
		t.Errorf("heap bytes = %d", st.HeapBytes)
	}
	if st.GCCycles < 1 {
		t.Errorf("gc cycles = %d after explicit GC", st.GCCycles)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	body := buf.String()
	for _, want := range []string{
		"maras_runtime_goroutines",
		"maras_runtime_heap_bytes",
		"maras_runtime_gc_cycles",
		"maras_runtime_gc_pause_max_seconds_count 1",
		"maras_runtime_sched_latency_max_seconds_count 1",
		`maras_watchdog_trips_total{check="gc_pause"} 0`,
		`maras_watchdog_trips_total{check="goroutines"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestRuntimeSamplerPauseDeltaResets(t *testing.T) {
	s := NewRuntimeSampler(NewRegistry(), RuntimeSamplerOptions{})
	runtime.GC()
	first := s.SampleOnce()
	if first.MaxGCPause <= 0 {
		t.Fatalf("first sample saw no GC pause after runtime.GC: %v", first.MaxGCPause)
	}
	// No GC between samples: the delta max must drop to zero.
	second := s.SampleOnce()
	if second.MaxGCPause != 0 {
		t.Errorf("idle interval pause = %v, want 0", second.MaxGCPause)
	}
}

func TestWatchdogTripsAndEdgeLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	reg := NewRegistry()
	s := NewRuntimeSampler(reg, RuntimeSamplerOptions{
		MaxGoroutines: 1, // any real process exceeds this
		Logger:        logger,
	})
	s.SampleOnce()
	s.SampleOnce() // sustained breach: counted again, not logged again

	var promBuf bytes.Buffer
	reg.WritePrometheus(&promBuf)
	if !strings.Contains(promBuf.String(), `maras_watchdog_trips_total{check="goroutines"} 2`) {
		t.Errorf("trip counter should count every violating sample:\n%s", promBuf.String())
	}
	logs := buf.String()
	if got := strings.Count(logs, "runtime watchdog limit exceeded"); got != 1 {
		t.Errorf("edge-triggered warn logged %d times, want 1:\n%s", got, logs)
	}
	if !strings.Contains(logs, "check=goroutines") {
		t.Errorf("warn missing check name:\n%s", logs)
	}

	// Recovery: lift the limit and confirm the Info transition log.
	s.opts.MaxGoroutines = 1 << 30
	s.SampleOnce()
	if !strings.Contains(buf.String(), "runtime watchdog recovered") {
		t.Errorf("recovery not logged:\n%s", buf.String())
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	s := NewRuntimeSampler(NewRegistry(), RuntimeSamplerOptions{Interval: time.Millisecond})
	s.Start()
	s.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
}

func TestRuntimeSamplerStopBeforeStart(t *testing.T) {
	s := NewRuntimeSampler(NewRegistry(), RuntimeSamplerOptions{})
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop before Start deadlocked")
	}
}

func TestReadRuntimeStatsOneShot(t *testing.T) {
	st := ReadRuntimeStats()
	if st.Goroutines < 1 || st.HeapBytes <= 0 {
		t.Errorf("one-shot stats empty: %+v", st)
	}
}

func TestHistMaxDelta(t *testing.T) {
	mk := func(counts ...uint64) *metrics.Float64Histogram {
		return &metrics.Float64Histogram{
			Counts:  counts,
			Buckets: []float64{0, 0.001, 0.01, math.Inf(1)},
		}
	}
	if histMaxDelta(nil, nil) != 0 {
		t.Error("nil histograms should yield 0")
	}
	// No prev: the highest populated bucket counts.
	if got := histMaxDelta(nil, mk(5, 2, 0)); got != 10*time.Millisecond {
		t.Errorf("since-start delta = %v, want 10ms", got)
	}
	// Growth only in the low bucket: the high bucket's old counts are
	// not re-reported.
	if got := histMaxDelta(mk(5, 2, 0), mk(9, 2, 0)); got != time.Millisecond {
		t.Errorf("low-bucket growth delta = %v, want 1ms", got)
	}
	// No growth at all.
	if got := histMaxDelta(mk(5, 2, 0), mk(5, 2, 0)); got != 0 {
		t.Errorf("idle delta = %v, want 0", got)
	}
	// Growth in the +Inf bucket falls back to its finite lower bound.
	if got := histMaxDelta(mk(5, 2, 0), mk(5, 2, 1)); got != 10*time.Millisecond {
		t.Errorf("+Inf bucket delta = %v, want lower bound 10ms", got)
	}
}

// TestWatchdogOnViolationEdgeEvents drives the sampler by hand (each
// SampleOnce is one fake clock tick) and asserts the OnViolation hook
// fires exactly once per excursion edge — not once per violating
// sample — so downstream consumers (the audit event log) see one event
// per incident.
func TestWatchdogOnViolationEdgeEvents(t *testing.T) {
	var events []WatchdogEvent
	s := NewRuntimeSampler(NewRegistry(), RuntimeSamplerOptions{
		MaxGoroutines: 1, // any real process exceeds this
		OnViolation:   func(ev WatchdogEvent) { events = append(events, ev) },
	})
	s.SampleOnce() // tick 1: enters violation
	s.SampleOnce() // tick 2: still violating — no new event
	s.SampleOnce() // tick 3: still violating — no new event
	if len(events) != 1 {
		t.Fatalf("sustained breach produced %d events, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Check != WatchdogGoroutines || !ev.Entering {
		t.Fatalf("entering event = %+v", ev)
	}
	if ev.Limit != 1 || ev.Value <= ev.Limit {
		t.Fatalf("event value/limit = %v/%v", ev.Value, ev.Limit)
	}

	s.opts.MaxGoroutines = 1 << 30
	s.SampleOnce() // tick 4: recovers
	s.SampleOnce() // tick 5: still fine — no new event
	if len(events) != 2 {
		t.Fatalf("recovery produced %d events total, want 2: %+v", len(events), events)
	}
	if rec := events[1]; rec.Check != WatchdogGoroutines || rec.Entering {
		t.Fatalf("recovery event = %+v", rec)
	}
}
