package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Journal defaults: how many completed traces the ring buffer holds,
// what counts as slow, and how many slowest traces are pinned.
const (
	DefaultJournalCapacity = 256
	DefaultSlowThreshold   = 250 * time.Millisecond
	slowestKept            = 16
)

// Journal is a fixed-size, lock-protected ring buffer of completed
// request traces plus a pinned set of the slowest traces seen. It is
// the no-collector answer to "what did that slow request do": recent
// and slowest traces are always inspectable at /debug/traces. A nil
// *Journal is safe and records nothing (tracing disabled).
type Journal struct {
	mu        sync.Mutex
	capacity  int
	threshold time.Duration
	ring      []TraceRecord // oldest..newest, up to capacity
	next      int           // ring write cursor once full
	full      bool
	total     uint64
	slowTotal uint64
	evicted   uint64            // traces overwritten by the full ring
	evictedC  *Counter          // optional mirror of evicted (CountEvictions)
	slowest   []TraceRecord     // sorted by duration, descending, ≤ slowestKept
	onSlow    func(TraceRecord) // called outside the lock per slow trace
}

// NewJournal builds a journal holding up to capacity recent traces
// (0 or negative = DefaultJournalCapacity), flagging traces at or
// above slowThreshold (0 = DefaultSlowThreshold).
func NewJournal(capacity int, slowThreshold time.Duration) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	return &Journal{
		capacity:  capacity,
		threshold: slowThreshold,
		ring:      make([]TraceRecord, 0, capacity),
	}
}

// CountEvictions attaches a counter bumped every time the full ring
// overwrites (evicts) its oldest trace, so silent trace loss is
// visible on /metrics instead of only in JournalStats.
func (j *Journal) CountEvictions(c *Counter) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.evictedC = c
	j.mu.Unlock()
}

// OnSlow registers fn to run for every slow trace recorded, outside
// the journal lock on the goroutine that called Add — the hook the
// continuous profiler uses to snapshot the process while whatever
// made the request slow may still be happening. One subscriber;
// set it during wiring, before traffic.
func (j *Journal) OnSlow(fn func(TraceRecord)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.onSlow = fn
	j.mu.Unlock()
}

// SlowThreshold returns the configured slow-trace threshold.
func (j *Journal) SlowThreshold() time.Duration {
	if j == nil {
		return 0
	}
	return j.threshold
}

// Add records a completed trace, flagging it slow when its duration
// reaches the threshold, and reports that flag back so callers can
// count or log slow requests. Nil journals drop the trace.
func (j *Journal) Add(rec TraceRecord) (slow bool) {
	if j == nil {
		return false
	}
	rec.Slow = rec.Duration() >= j.threshold
	j.mu.Lock()
	if len(j.ring) < j.capacity {
		j.ring = append(j.ring, rec)
	} else {
		j.ring[j.next] = rec
		j.next = (j.next + 1) % j.capacity
		j.full = true
		j.evicted++
		if j.evictedC != nil {
			j.evictedC.Inc()
		}
	}
	j.total++
	if rec.Slow {
		j.slowTotal++
	}
	// Pin into the slowest set (sorted descending by duration).
	i := sort.Search(len(j.slowest), func(i int) bool {
		return j.slowest[i].DurationNS < rec.DurationNS
	})
	if i < slowestKept {
		j.slowest = append(j.slowest, TraceRecord{})
		copy(j.slowest[i+1:], j.slowest[i:])
		j.slowest[i] = rec
		if len(j.slowest) > slowestKept {
			j.slowest = j.slowest[:slowestKept]
		}
	}
	onSlow := j.onSlow
	j.mu.Unlock()
	if rec.Slow && onSlow != nil {
		onSlow(rec)
	}
	return rec.Slow
}

// Recent returns up to n completed traces, newest first. n <= 0
// returns everything held.
func (j *Journal) Recent(n int) []TraceRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TraceRecord, 0, len(j.ring))
	// Oldest..newest order is ring[next:] + ring[:next] when full.
	if j.full {
		out = append(out, j.ring[j.next:]...)
		out = append(out, j.ring[:j.next]...)
	} else {
		out = append(out, j.ring...)
	}
	// Reverse to newest first.
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Find returns the completed trace with the given ID, preferring the
// most recent match in the ring and falling back to the pinned slowest
// set (a trace evicted from the ring for age can survive there). A nil
// journal finds nothing.
func (j *Journal) Find(id string) (TraceRecord, bool) {
	if j == nil {
		return TraceRecord{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Scan the ring newest-first: oldest..newest is ring[next:]+ring[:next]
	// when full, plain order otherwise.
	for k := len(j.ring) - 1; k >= 0; k-- {
		i := k
		if j.full {
			i = (j.next + k) % j.capacity
		}
		if j.ring[i].ID == id {
			return j.ring[i], true
		}
	}
	for _, tr := range j.slowest {
		if tr.ID == id {
			return tr, true
		}
	}
	return TraceRecord{}, false
}

// Slowest returns up to n of the slowest traces seen since startup,
// slowest first. n <= 0 returns the full pinned set.
func (j *Journal) Slowest(n int) []TraceRecord {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TraceRecord, len(j.slowest))
	copy(out, j.slowest)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// JournalStats summarizes journal activity.
type JournalStats struct {
	Total         uint64        `json:"total"`
	Slow          uint64        `json:"slow"`
	Evicted       uint64        `json:"evicted"`
	Capacity      int           `json:"capacity"`
	SlowThreshold time.Duration `json:"slow_threshold_ns"`
}

// Stats returns totals since startup.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Total:         j.total,
		Slow:          j.slowTotal,
		Evicted:       j.evicted,
		Capacity:      j.capacity,
		SlowThreshold: j.threshold,
	}
}

// TracesHandler serves the journal at /debug/traces: human-readable
// span trees by default, the full structured dump with ?format=json.
// ?n=K bounds how many recent/slowest traces are shown (default 20).
// A nil journal answers 404 so the route can be mounted
// unconditionally.
func TracesHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "trace journal disabled (-trace-journal 0)", http.StatusNotFound)
			return
		}
		n := 20
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		stats := j.Stats()
		recent := j.Recent(n)
		slowest := j.Slowest(n)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Stats   JournalStats  `json:"stats"`
				Slowest []TraceRecord `json:"slowest"`
				Recent  []TraceRecord `json:"recent"`
			}{stats, slowest, recent})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace journal: %d traces (%d slow >= %s), ring capacity %d\n",
			stats.Total, stats.Slow, stats.SlowThreshold, stats.Capacity)
		fmt.Fprintf(w, "\n== slowest (%d) ==\n", len(slowest))
		for _, tr := range slowest {
			WriteTraceText(w, tr)
		}
		fmt.Fprintf(w, "\n== recent (%d, newest first) ==\n", len(recent))
		for _, tr := range recent {
			WriteTraceText(w, tr)
		}
	})
}

// WriteTraceText renders one trace as an indented span tree — the
// human-readable form /debug/traces and /debug/diag share.
func WriteTraceText(w io.Writer, tr TraceRecord) {
	flag := ""
	if tr.Slow {
		flag = " SLOW"
	}
	fmt.Fprintf(w, "\ntrace %s %s %s%s\n", tr.ID, tr.Name, tr.Duration().Round(time.Microsecond), flag)
	children := map[int][]SpanRecord{}
	for _, s := range tr.Spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].StartNS < kids[j].StartNS })
	}
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, s := range children[parent] {
			fmt.Fprintf(w, "%s%s %s%s\n", strings.Repeat("  ", depth),
				s.Name, s.Duration().Round(time.Microsecond), renderSpanAttrs(s.Attrs))
			walk(s.ID, depth+1)
		}
	}
	walk(-1, 1)
}

// renderSpanAttrs formats span attributes as " {k=v k=v}" with sorted
// keys for stable output.
func renderSpanAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" {")
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(attrs[k])
	}
	b.WriteByte('}')
	return b.String()
}
