package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTrace("req-1")
	ctx, root := tr.StartRoot(context.Background(), "GET /q/")
	root.SetAttr("path", "/q/2014Q1/api/signals")

	ctx2, load := StartSpan(ctx, "store_load")
	load.SetAttr("cache", "lru_miss")
	_, dec := StartSpan(ctx2, "snapshot_decode")
	dec.SetInt("bytes", 4096)
	dec.End()
	load.End()

	_, render := StartSpan(ctx, "render:index")
	render.End()
	root.End()

	rec := tr.Snapshot()
	if rec.ID != "req-1" || rec.Name != "GET /q/" {
		t.Fatalf("trace identity = %q %q", rec.ID, rec.Name)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	rootRec := byName["GET /q/"]
	if rootRec.Parent != -1 {
		t.Errorf("root parent = %d, want -1", rootRec.Parent)
	}
	if byName["store_load"].Parent != rootRec.ID {
		t.Errorf("store_load parent = %d, want root %d", byName["store_load"].Parent, rootRec.ID)
	}
	if byName["snapshot_decode"].Parent != byName["store_load"].ID {
		t.Errorf("decode parent = %d, want load %d",
			byName["snapshot_decode"].Parent, byName["store_load"].ID)
	}
	if byName["render:index"].Parent != rootRec.ID {
		t.Errorf("render parent = %d, want root %d", byName["render:index"].Parent, rootRec.ID)
	}
	if byName["store_load"].Attrs["cache"] != "lru_miss" {
		t.Errorf("cache attr = %q", byName["store_load"].Attrs["cache"])
	}
	if byName["snapshot_decode"].Attrs["bytes"] != "4096" {
		t.Errorf("bytes attr = %q", byName["snapshot_decode"].Attrs["bytes"])
	}
	if rec.DurationNS <= 0 {
		t.Errorf("trace duration = %d", rec.DurationNS)
	}
}

func TestStartSpanWithoutTraceNoOps(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "orphan")
	if span != nil {
		t.Fatal("expected nil span on a context without a trace")
	}
	if ctx2 != ctx {
		t.Error("context should be returned unchanged")
	}
	// Every method must be nil-safe.
	span.SetAttr("k", "v")
	span.SetInt("n", 1)
	span.End()
	if got := ActiveSpan(ctx); got != nil {
		t.Errorf("ActiveSpan = %v, want nil", got)
	}
}

// TestDisabledSpanZeroAllocs is the acceptance criterion: threading
// StartSpan through an untraced call path must be free.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, span := StartSpan(ctx, "disabled")
		span.SetAttr("k", "v")
		span.SetInt("n", 42)
		span.End()
		_ = c
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %.1f objects per op, want 0", allocs)
	}
}

func TestAttachStageRecords(t *testing.T) {
	tr := NewTrace("mine-1")
	ctx, root := tr.StartRoot(context.Background(), "startup mine 2014Q1")
	recs := []StageRecord{
		{Name: "clean", Seq: 1, DurationNS: int64(2 * time.Millisecond), AllocBytes: 1024,
			Counters: map[string]int64{"reports_in": 100}},
		{Name: "mine", Seq: 2, DurationNS: int64(5 * time.Millisecond)},
	}
	AttachStageRecords(ctx, recs)
	root.End()

	rec := tr.Snapshot()
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	clean, ok := byName["stage:clean"]
	if !ok {
		t.Fatalf("stage:clean span missing; have %v", rec.Spans)
	}
	mine, ok := byName["stage:mine"]
	if !ok {
		t.Fatal("stage:mine span missing")
	}
	rootID := byName["startup mine 2014Q1"].ID
	if clean.Parent != rootID || mine.Parent != rootID {
		t.Errorf("stage spans not parented to root: %d %d vs %d", clean.Parent, mine.Parent, rootID)
	}
	if clean.Attrs["reports_in"] != "100" || clean.Attrs["alloc_bytes"] != "1024" {
		t.Errorf("stage counters not bridged: %v", clean.Attrs)
	}
	// Back-to-back layout: clean ends where mine begins.
	if got := clean.StartNS + clean.DurationNS; got != mine.StartNS {
		t.Errorf("stages not end-aligned: clean ends %d, mine starts %d", got, mine.StartNS)
	}
	// Attaching on an untraced context is a silent no-op.
	AttachStageRecords(context.Background(), recs)
}

func TestSnapshotWithoutRootUsesSpanExtent(t *testing.T) {
	tr := NewTrace("partial")
	ctx, _ := tr.StartRoot(context.Background(), "never ended")
	_, child := StartSpan(ctx, "child")
	time.Sleep(time.Millisecond)
	child.End()
	rec := tr.Snapshot() // root still in flight
	if len(rec.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 (only the child completed)", len(rec.Spans))
	}
	if rec.DurationNS <= 0 {
		t.Error("extent fallback duration not computed")
	}
}

func TestRequestIDGeneration(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Error("request IDs must differ")
	}
	for _, id := range []string{a, b} {
		if len(id) != 16 || !ValidRequestID(id) {
			t.Errorf("generated ID %q not 16 valid hex chars", id)
		}
	}
}

func TestValidRequestID(t *testing.T) {
	valid := []string{"abc123", "trace-7f", "A_b.c:d/e", "x"}
	for _, s := range valid {
		if !ValidRequestID(s) {
			t.Errorf("ValidRequestID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "has space", "quo\"te", "new\nline", "tab\there",
		string(make([]byte, 129)), "\x7f", "héllo"}
	for _, s := range invalid {
		if ValidRequestID(s) {
			t.Errorf("ValidRequestID(%q) = true, want false", s)
		}
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, span := StartSpan(ctx, "disabled")
		span.SetInt("n", int64(i))
		span.End()
		_ = c
	}
}

func BenchmarkActiveSpan(b *testing.B) {
	tr := NewTrace("bench")
	ctx, root := tr.StartRoot(context.Background(), "root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, span := StartSpan(ctx, "child")
		span.SetInt("n", int64(i))
		span.End()
		_ = c
		if i&0xffff == 0xffff {
			// Bound trace growth so a long -benchtime run stays flat.
			tr.mu.Lock()
			tr.spans = tr.spans[:0]
			tr.mu.Unlock()
		}
	}
}
