// Package obs is the observability substrate of the MARAS system:
// a per-stage pipeline tracer, request-scoped span tracing with a
// ring-buffer trace journal (/debug/traces), a dependency-free
// metrics registry with a hand-written Prometheus text renderer and
// expvar bridge, HTTP server middleware (request logging with
// request IDs, latency histograms, status counters, panic recovery,
// root spans), liveness/readiness probes, a runtime health sampler
// with a watchdog, and pprof wiring. Everything is standard library
// only (log/slog, expvar, net/http/pprof, runtime/metrics), matching
// the repo's zero-dependency rule.
package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"runtime/metrics"
	"sync"
	"time"
)

// heapAllocsMetric is the cumulative heap allocation counter sampled
// around each stage to attribute allocation volume per stage.
const heapAllocsMetric = "/gc/heap/allocs:bytes"

// StageRecord is one completed pipeline stage: what it was called,
// how long it ran, how much it allocated, and its domain counters
// (reports cleaned, itemsets mined, rules kept, ...).
type StageRecord struct {
	Name       string           `json:"name"`
	Seq        int              `json:"seq"`
	DurationNS int64            `json:"duration_ns"`
	AllocBytes uint64           `json:"alloc_bytes"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Duration returns the stage wall time as a time.Duration.
func (r StageRecord) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Tracer collects per-stage records of one pipeline run. A nil
// *Tracer is fully usable and free: every method no-ops without
// allocating, so the pipeline threads it unconditionally.
//
// Stages are expected to be sequential (the pipeline is a straight
// line), but the tracer is safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	stages []StageRecord
	logger *slog.Logger
	sample [1]metrics.Sample
}

// NewTracer returns a tracer. logger may be nil; when set, every
// completed stage is logged at Debug level.
func NewTracer(logger *slog.Logger) *Tracer {
	t := &Tracer{logger: logger}
	t.sample[0].Name = heapAllocsMetric
	return t
}

// Stage is an in-flight pipeline stage started by StartStage. A nil
// *Stage no-ops on every method.
type Stage struct {
	t        *Tracer
	name     string
	start    time.Time
	startAlc uint64
	counters map[string]int64
}

// readAllocs samples cumulative heap allocation bytes.
func (t *Tracer) readAllocs() uint64 {
	t.mu.Lock()
	metrics.Read(t.sample[:])
	v := t.sample[0].Value
	t.mu.Unlock()
	if v.Kind() == metrics.KindUint64 {
		return v.Uint64()
	}
	return 0
}

// StartStage begins a named stage. Call End on the returned stage
// when the work completes. On a nil tracer it returns nil, which is
// safe to use.
func (t *Tracer) StartStage(name string) *Stage {
	if t == nil {
		return nil
	}
	return &Stage{
		t:        t,
		name:     name,
		startAlc: t.readAllocs(),
		start:    time.Now(),
	}
}

// Count adds n to a named stage counter (reports_in, rules_kept, ...).
func (s *Stage) Count(name string, n int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] += n
}

// End finalizes the stage and appends its record to the tracer.
func (s *Stage) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	endAlc := s.t.readAllocs()
	var alloc uint64
	if endAlc > s.startAlc {
		alloc = endAlc - s.startAlc
	}
	s.t.mu.Lock()
	rec := StageRecord{
		Name:       s.name,
		Seq:        len(s.t.stages) + 1,
		DurationNS: int64(dur),
		AllocBytes: alloc,
		Counters:   s.counters,
	}
	s.t.stages = append(s.t.stages, rec)
	logger := s.t.logger
	s.t.mu.Unlock()
	if logger != nil {
		attrs := []any{
			slog.String("stage", s.name),
			slog.Duration("duration", dur),
			slog.Uint64("alloc_bytes", alloc),
		}
		for k, v := range s.counters {
			attrs = append(attrs, slog.Int64(k, v))
		}
		logger.Debug("pipeline stage", attrs...)
	}
}

// Len returns how many stages have completed. Nil tracers report 0.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stages)
}

// Records returns a copy of the completed stage records in order.
// Nil tracers return nil.
func (t *Tracer) Records() []StageRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageRecord, len(t.stages))
	copy(out, t.stages)
	return out
}

// Reset discards all recorded stages so the tracer can observe
// another run.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = t.stages[:0]
	t.mu.Unlock()
}

// TotalDuration sums the wall time of all recorded stages.
func (t *Tracer) TotalDuration() time.Duration {
	var tot time.Duration
	for _, r := range t.Records() {
		tot += r.Duration()
	}
	return tot
}

// WriteJSON writes the stage records as an indented JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	recs := t.Records()
	if recs == nil {
		recs = []StageRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
