package obs

import "runtime/debug"

// BuildInfo is the subset of runtime/debug.BuildInfo the server
// exposes: enough to answer "which binary is this" from /metrics or
// /healthz without shelling into the box.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Version   string `json:"version"`  // module version; "(devel)" for local builds
	Revision  string `json:"revision"` // VCS commit, when stamped
	Modified  bool   `json:"modified"` // dirty working tree at build time
}

// ReadBuildInfo extracts build identity from the running binary.
// Fields the toolchain did not stamp stay "unknown" rather than
// empty so label values render meaningfully.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: "unknown", Version: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				bi.Revision = s.Value
			}
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo publishes the Prometheus-idiom maras_build_info
// gauge: constant 1, with the identity carried in labels so joins
// against any other series annotate it with the running version.
// Returns the info so callers can also echo it on /healthz.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := ReadBuildInfo()
	reg.Gauge("maras_build_info",
		"Build identity of the running binary (value is always 1).",
		Label{"go_version", bi.GoVersion},
		Label{"version", bi.Version},
		Label{"revision", bi.Revision},
	).Set(1)
	return bi
}

// Detail returns the build info as /healthz detail entries.
func (bi BuildInfo) Detail() map[string]any {
	return map[string]any{
		"go_version": bi.GoVersion,
		"version":    bi.Version,
		"revision":   bi.Revision,
	}
}
