package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	rpprof "runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HTTPMetrics instruments a mux: per-route request/latency/status
// series, an in-flight gauge, panic recovery, structured request
// logs with request IDs, and (when a journal is attached) a root
// span per request feeding the trace journal.
type HTTPMetrics struct {
	reg      *Registry
	logger   *slog.Logger
	inflight *Gauge
	panics   *Counter

	journal    *Journal
	traces     *Counter
	slowTraces *Counter

	onComplete func(RequestSample)
}

// RequestSample is the flat per-request record handed to the
// OnComplete hook when the wrapped handler finishes: identity, route,
// outcome, and (when tracing is enabled) the completed trace. It is
// the raw material of a wide event — defined here rather than in
// obs/wide so the middleware stays free of that dependency.
type RequestSample struct {
	Time      time.Time // completion time
	RequestID string
	Route     string
	Status    int
	Duration  time.Duration
	Bytes     int64
	Gzip      bool         // response negotiated Content-Encoding: gzip
	Stale     bool         // response carried X-Maras-Stale
	Origin    string       // response X-Maras-Origin (local|stale|peer)
	Trace     *TraceRecord // completed trace; nil when tracing is disabled
}

// OnComplete registers fn to run after every wrapped request, outside
// any lock, on the serving goroutine. One subscriber; set it during
// wiring, before traffic. A nil hook (the default) adds nothing to the
// request path.
func (m *HTTPMetrics) OnComplete(fn func(RequestSample)) { m.onComplete = fn }

// NewHTTPMetrics builds the middleware over a registry. logger may
// be nil to disable request logging.
func NewHTTPMetrics(reg *Registry, logger *slog.Logger) *HTTPMetrics {
	return &HTTPMetrics{
		reg:      reg,
		logger:   logger,
		inflight: reg.Gauge("http_inflight_requests", "Requests currently being served."),
		panics:   reg.Counter("http_panics_total", "Handler panics recovered."),
	}
}

// EnableTracing attaches a trace journal: every wrapped request opens
// a root span carried through the request context, and the completed
// trace lands in j. Without it the span path stays disabled (and
// allocation-free) — request IDs are handled either way.
func (m *HTTPMetrics) EnableTracing(j *Journal) {
	m.journal = j
	m.traces = m.reg.Counter("http_traces_total", "Request traces recorded in the journal.")
	m.slowTraces = m.reg.Counter("http_slow_traces_total",
		"Request traces at or above the slow-trace threshold.")
	j.CountEvictions(m.reg.Counter("maras_trace_journal_evicted_total",
		"Completed traces overwritten by the fixed-size journal ring."))
}

// statusRecorder captures the status code and bytes written by the
// wrapped handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Flush passes http.Flusher through the wrapper so streaming and
// chunked handlers (pprof profiles, long renders) keep flushing under
// the middleware. A non-flushing underlying writer makes it a no-op.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		f.Flush()
	}
}

// codeClass buckets a status code into "1xx".."5xx".
func codeClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

var codeClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Wrap instruments a handler under a route label (the mux pattern).
// The counters and histogram series are created eagerly so /metrics
// shows every route from the first scrape.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	byClass := make(map[string]*Counter, len(codeClasses))
	for _, cc := range codeClasses {
		byClass[cc] = m.reg.Counter("http_requests_total",
			"HTTP requests served, by route and status class.",
			Label{"route", route}, Label{"code", cc})
	}
	latency := m.reg.Histogram("http_request_duration_seconds",
		"Request latency in seconds, by route.", DefaultLatencyBuckets,
		Label{"route", route})

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}

		// Request identity: honor a well-formed inbound X-Request-ID,
		// generate otherwise, and echo it on the response so clients
		// and logs correlate.
		reqID := r.Header.Get(RequestIDHeader)
		if !ValidRequestID(reqID) {
			reqID = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)

		// Root span: only when a journal is attached; the disabled
		// path allocates nothing on the span side.
		var tr *Trace
		var root *Span
		if m.journal != nil {
			tr = NewTrace(reqID)
			var ctx context.Context
			ctx, root = tr.StartRoot(r.Context(), r.Method+" "+route)
			root.SetAttr("path", r.URL.Path)
			r = r.WithContext(ctx)
		}

		defer func() {
			if p := recover(); p != nil {
				m.panics.Inc()
				if rec.status == 0 {
					http.Error(rec.ResponseWriter, "internal server error", http.StatusInternalServerError)
					rec.status = http.StatusInternalServerError
				}
				if m.logger != nil {
					m.logger.Error("handler panic",
						slog.String("route", route),
						slog.String("path", r.URL.Path),
						slog.String("request_id", reqID),
						slog.Any("panic", p),
						slog.String("stack", string(debug.Stack())),
					)
				}
			}
			dur := time.Since(start)
			m.inflight.Add(-1)
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			byClass[codeClass(status)].Inc()
			// The request ID doubles as the trace ID, so the exemplar on
			// the latency bucket links straight to /debug/diag/{id}.
			latency.ObserveExemplar(dur.Seconds(), reqID)
			var snap TraceRecord
			if root != nil {
				root.SetInt("status", int64(status))
				root.SetInt("bytes", rec.bytes)
				root.End()
				snap = tr.Snapshot()
				slow := m.journal.Add(snap)
				m.traces.Inc()
				if slow {
					m.slowTraces.Inc()
					if m.logger != nil {
						m.logger.Warn("slow request trace",
							slog.String("request_id", reqID),
							slog.String("route", route),
							slog.Duration("duration", dur),
						)
					}
				}
			}
			if m.onComplete != nil {
				s := RequestSample{
					Time:      start.Add(dur),
					RequestID: reqID,
					Route:     route,
					Status:    status,
					Duration:  dur,
					Bytes:     rec.bytes,
					Gzip:      rec.Header().Get("Content-Encoding") == "gzip",
					Stale:     rec.Header().Get("X-Maras-Stale") != "",
					Origin:    rec.Header().Get("X-Maras-Origin"),
				}
				if root != nil {
					s.Trace = &snap
				}
				m.onComplete(s)
			}
			if m.logger != nil {
				m.logger.Info("request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("route", route),
					slog.String("request_id", reqID),
					slog.Int("status", status),
					slog.Duration("duration", dur),
					slog.Int64("bytes", rec.bytes),
					slog.String("remote", r.RemoteAddr),
				)
			}
		}()
		// Serve under a route= pprof label so CPU profile samples —
		// whether from an attached operator or the continuous-capture
		// scheduler — attribute request cycles per route. The label set
		// is tiny and pprof.Do is a few map writes; this is always on.
		// (runtime/pprof directly, not obs/prof: prof imports obs.)
		rpprof.Do(r.Context(), rpprof.Labels("route", route), func(ctx context.Context) {
			next.ServeHTTP(rec, r.WithContext(ctx))
		})
	})
}

// HandleFunc registers an instrumented handler on the mux under
// pattern, using the pattern itself as the route label.
func (m *HTTPMetrics) HandleFunc(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.Handle(pattern, m.Wrap(pattern, h))
}

// Handle is HandleFunc for an http.Handler — the registration point
// when the application handler is itself wrapped in middleware (e.g. a
// load-shedding bulkhead) that should run inside the instrumentation,
// so its responses are counted, logged, and spanned like any other.
func (m *HTTPMetrics) Handle(mux *http.ServeMux, pattern string, h http.Handler) {
	mux.Handle(pattern, m.Wrap(pattern, h))
}

// openMetricsContentType is the negotiated OpenMetrics media type;
// scrapers opt in with Accept: application/openmetrics-text (as
// Prometheus does when exemplar ingestion is on).
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricsHandler serves the registry. The default rendering is
// Prometheus exposition text (with runtime series appended);
// ?format=json returns the full expvar dump, and clients accepting
// application/openmetrics-text (or asking ?format=openmetrics) get
// the OpenMetrics rendering with histogram exemplars and the terminal
// `# EOF` — so one endpoint covers all three scrape styles.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Query().Get("format") == "json":
			ExpvarHandler().ServeHTTP(w, r)
		case r.URL.Query().Get("format") == "openmetrics" ||
			strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text"):
			w.Header().Set("Content-Type", openMetricsContentType)
			reg.WriteOpenMetrics(w)
			WriteRuntimePrometheus(w)
			io.WriteString(w, "# EOF\n")
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
			WriteRuntimePrometheus(w)
		}
	})
}

// ExpvarHandler returns the standard /debug/vars JSON handler
// (expvar.Handler is only registered on the default mux by import;
// this exposes it for custom muxes).
func ExpvarHandler() http.Handler { return expvar.Handler() }

// HealthzHandler reports liveness plus caller-supplied detail
// (quarter served, signal count, uptime).
func HealthzHandler(detail func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ok"}
		if detail != nil {
			for k, v := range detail() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(body); err != nil {
			http.Error(w, fmt.Sprintf("healthz encode: %v", err), http.StatusInternalServerError)
		}
	})
}

// Readiness is the latch behind /readyz, separating liveness ("the
// process is up", /healthz) from readiness ("the store registry or
// initial mine is done; send traffic"). It starts not-ready; the
// serving process flips it once its backing data is loadable. A nil
// *Readiness reports not ready.
type Readiness struct {
	ready  atomic.Bool
	mu     sync.Mutex
	causes map[string]bool // named degradation causes currently set
}

// SetReady marks the process ready to serve.
func (rd *Readiness) SetReady() { rd.ready.Store(true) }

// Ready reports whether SetReady has been called.
func (rd *Readiness) Ready() bool { return rd != nil && rd.ready.Load() }

// SetDegraded flags (or clears) one named cause of degraded
// operation: the process is still serving — /readyz stays 200 so the
// load balancer keeps routing — but some answers come from stale data
// or a service objective is burning. Causes are independent: stale
// store serving ("store") and an SLO fast burn ("slo:availability")
// can overlap without stomping each other's flag, and Degraded stays
// true until every cause clears. Orchestrators alert on the status
// string; they do not drain.
func (rd *Readiness) SetDegraded(cause string, on bool) {
	if rd == nil {
		return
	}
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if on {
		if rd.causes == nil {
			rd.causes = map[string]bool{}
		}
		rd.causes[cause] = true
		return
	}
	delete(rd.causes, cause)
}

// Degraded reports whether any degradation cause is set.
func (rd *Readiness) Degraded() bool {
	if rd == nil {
		return false
	}
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return len(rd.causes) > 0
}

// DegradedCauses returns the sorted names of the active causes.
func (rd *Readiness) DegradedCauses() []string {
	if rd == nil {
		return nil
	}
	rd.mu.Lock()
	out := make([]string, 0, len(rd.causes))
	for c := range rd.causes {
		out = append(out, c)
	}
	rd.mu.Unlock()
	sort.Strings(out)
	return out
}

// ReadyzHandler answers 503 until rd is ready, then 200 with the
// caller-supplied detail — the load-balancer gate, where /healthz is
// the restart gate. A ready-but-degraded process still answers 200,
// with status "degraded" instead of "ready".
func ReadyzHandler(rd *Readiness, detail func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !rd.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"status": "unavailable"})
			return
		}
		status := "ready"
		body := map[string]any{}
		if causes := rd.DegradedCauses(); len(causes) > 0 {
			status = "degraded"
			body["degraded_causes"] = causes
		}
		body["status"] = status
		if detail != nil {
			for k, v := range detail() {
				body[k] = v
			}
		}
		if err := json.NewEncoder(w).Encode(body); err != nil {
			http.Error(w, fmt.Sprintf("readyz encode: %v", err), http.StatusInternalServerError)
		}
	})
}

// RegisterPprof wires the net/http/pprof handlers onto a custom mux
// under the standard /debug/pprof/ prefix.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
