package obs

// StoreMetrics instruments the snapshot store (package store): how
// long snapshot loads take, how many quarters are held open, and how
// the open-quarter LRU is behaving. All fields are nil-safe through
// the usual registry types; construct with NewStoreMetrics so the
// series exist (at zero) from the first scrape.
type StoreMetrics struct {
	// LoadSeconds observes the wall time of each snapshot load from
	// disk (decode + rehydrate).
	LoadSeconds *Histogram
	// OpenQuarters tracks the number of quarters currently resident.
	OpenQuarters *Gauge
	// Hits counts registry loads served from an already-open quarter.
	Hits *Counter
	// Misses counts registry loads that had to read a snapshot file.
	Misses *Counter
	// Evictions counts quarters dropped by the open-quarter LRU.
	Evictions *Counter
	// BytesRead accumulates snapshot bytes read from disk.
	BytesRead *Counter
	// Retries counts extra load attempts taken by the resilience
	// layer's transient-failure retry (attempts beyond the first).
	Retries *Counter
	// Quarantined counts corrupt snapshots renamed aside.
	Quarantined *Counter
	// StaleServes counts loads answered from the last-good stale
	// cache because the live load failed.
	StaleServes *Counter
	// PeerServes counts loads answered by a replica peer (fetched or
	// peer-cached) after the local and stale tiers both failed.
	PeerServes *Counter
	// BreakersOpen tracks how many per-quarter load breakers are
	// currently not closed (open or half-open).
	BreakersOpen *Gauge
}

// NewStoreMetrics registers the store metric families on r and
// returns the bound instruments.
func NewStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		LoadSeconds: r.Histogram("maras_store_snapshot_load_seconds",
			"Wall time to load one quarter snapshot from disk.", DefaultLatencyBuckets),
		OpenQuarters: r.Gauge("maras_store_open_quarters",
			"Quarters currently open (resident) in the snapshot registry."),
		Hits: r.Counter("maras_store_cache_hits_total",
			"Registry loads served from an already-open quarter."),
		Misses: r.Counter("maras_store_cache_misses_total",
			"Registry loads that read a snapshot file from disk."),
		Evictions: r.Counter("maras_store_evictions_total",
			"Quarters evicted by the open-quarter LRU."),
		BytesRead: r.Counter("maras_store_snapshot_bytes_read_total",
			"Snapshot bytes read from disk."),
		Retries: r.Counter("maras_store_load_retries_total",
			"Extra snapshot load attempts taken after transient failures."),
		Quarantined: r.Counter("maras_store_quarantined_total",
			"Corrupt snapshots quarantined (renamed aside)."),
		StaleServes: r.Counter("maras_store_stale_serves_total",
			"Loads served from the last-good stale cache after a live-load failure."),
		PeerServes: r.Counter("maras_store_peer_serves_total",
			"Loads answered by a replica peer after the local and stale tiers failed."),
		BreakersOpen: r.Gauge("maras_store_breakers_open",
			"Per-quarter load circuit breakers currently open or half-open."),
	}
}
