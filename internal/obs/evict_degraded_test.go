package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestJournalEvictionCounted(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("maras_trace_journal_evicted_total", "h")
	j := NewJournal(2, 0)
	j.CountEvictions(c)
	for i := 0; i < 5; i++ {
		j.Add(TraceRecord{ID: fmt.Sprintf("t%d", i)})
	}
	if got := j.Stats().Evicted; got != 3 {
		t.Errorf("Stats().Evicted = %d, want 3", got)
	}
	if got := c.Value(); got != 3 {
		t.Errorf("eviction counter = %d, want 3", got)
	}
	// Without an attached counter, stats still track.
	j2 := NewJournal(1, 0)
	j2.Add(TraceRecord{ID: "a"})
	j2.Add(TraceRecord{ID: "b"})
	if got := j2.Stats().Evicted; got != 1 {
		t.Errorf("unattached Evicted = %d, want 1", got)
	}
}

func TestReadinessNamedCauses(t *testing.T) {
	rd := &Readiness{}
	if rd.Degraded() {
		t.Fatal("fresh Readiness should not be degraded")
	}
	rd.SetDegraded("store", true)
	rd.SetDegraded("slo:availability", true)
	if !rd.Degraded() {
		t.Fatal("degraded causes set but Degraded() false")
	}
	// Clearing one cause must not clear the other.
	rd.SetDegraded("store", false)
	if !rd.Degraded() {
		t.Error("clearing one cause cleared all")
	}
	got := rd.DegradedCauses()
	if len(got) != 1 || got[0] != "slo:availability" {
		t.Errorf("DegradedCauses = %v, want [slo:availability]", got)
	}
	rd.SetDegraded("slo:availability", false)
	if rd.Degraded() {
		t.Error("all causes cleared but still degraded")
	}
	// Nil receiver is safe.
	var nilRd *Readiness
	nilRd.SetDegraded("x", true)
	if nilRd.Degraded() || nilRd.DegradedCauses() != nil {
		t.Error("nil Readiness should report nothing")
	}
}

func TestReadyzHandlerListsDegradedCauses(t *testing.T) {
	rd := &Readiness{}
	rd.SetReady()
	rd.SetDegraded("slo:availability", true)
	rd.SetDegraded("store", true)
	h := ReadyzHandler(rd, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded still serves)", rec.Code)
	}
	var body struct {
		Status string   `json:"status"`
		Causes []string `json:"degraded_causes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" {
		t.Errorf("status = %q, want degraded", body.Status)
	}
	if len(body.Causes) != 2 || body.Causes[0] != "slo:availability" || body.Causes[1] != "store" {
		t.Errorf("degraded_causes = %v, want sorted [slo:availability store]", body.Causes)
	}
}
