package wide

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"maras/internal/obs"
)

// DefaultDiagWindow is how far around the event's completion the diag
// view looks for correlated audit events and profile artifacts.
const DefaultDiagWindow = 2 * time.Minute

// DiagAuditEvent is a governance/audit record correlated into the
// incident window — a narrowed copy of audit.Event so the wide package
// does not import the audit package.
type DiagAuditEvent struct {
	Time     time.Time `json:"time"`
	Rule     string    `json:"rule"`
	Severity string    `json:"severity"`
	Scope    string    `json:"scope,omitempty"`
	Message  string    `json:"message"`
}

// ProfileRef points at a profile artifact captured inside the incident
// window, with its integrity check result.
type ProfileRef struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	Cause    string    `json:"cause,omitempty"`
	TakenAt  time.Time `json:"taken_at"`
	Link     string    `json:"link"`
	Verified bool      `json:"verified"` // CRC check on the stored artifact passed
}

// SLOState is the burn-rate engine's current verdict plus any
// degraded-mode causes from the readiness probe.
type SLOState struct {
	Breached []string `json:"breached,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
}

// Diag wires the cross-signal joins the incident view needs. Each
// adapter is optional — a nil func simply leaves that section out —
// so serving modes wire whatever subsystems they run.
type Diag struct {
	Ring      *Ring
	FindTrace func(id string) (obs.TraceRecord, bool)
	Audit     func(from, to time.Time) []DiagAuditEvent
	SLO       func() SLOState
	Profiles  func(from, to time.Time) []ProfileRef
	Window    time.Duration // correlation window; 0 = DefaultDiagWindow
}

// DiagReport is the assembled incident view for one request ID.
type DiagReport struct {
	Event    Event            `json:"event"`
	HasEvent bool             `json:"has_event"`
	Trace    *obs.TraceRecord `json:"trace,omitempty"`
	Audit    []DiagAuditEvent `json:"audit,omitempty"`
	SLO      SLOState         `json:"slo"`
	Profiles []ProfileRef     `json:"profiles,omitempty"`
	Window   time.Duration    `json:"window_ns"`
}

// Report assembles the cross-signal join for one request ID: the wide
// event, its full span tree, audit events inside the surrounding
// window, current SLO breach state, and profile artifacts captured
// in-window. ok is false when neither the ring nor the journal knows
// the ID.
func (d Diag) Report(id string) (DiagReport, bool) {
	w := d.Window
	if w <= 0 {
		w = DefaultDiagWindow
	}
	rep := DiagReport{Window: w}
	rep.Event, rep.HasEvent = d.Ring.Find(id)
	if d.FindTrace != nil {
		// Prefer the event's own trace link (request IDs double as trace
		// IDs, but background events may link a different trace).
		tid := id
		if rep.HasEvent && rep.Event.Trace != "" {
			tid = rep.Event.Trace
		}
		if tr, ok := d.FindTrace(tid); ok {
			rep.Trace = &tr
		} else if tr, ok := d.FindTrace(id); ok {
			rep.Trace = &tr
		}
	}
	if !rep.HasEvent && rep.Trace == nil {
		return rep, false
	}
	// Center the correlation window on the completion time we know.
	at := rep.Event.Time
	if !rep.HasEvent && rep.Trace != nil {
		at = rep.Trace.Start.Add(rep.Trace.Duration())
	}
	from, to := at.Add(-w), at.Add(w)
	if d.Audit != nil {
		rep.Audit = d.Audit(from, to)
	}
	if d.SLO != nil {
		rep.SLO = d.SLO()
	}
	if d.Profiles != nil {
		rep.Profiles = d.Profiles(from, to)
	}
	return rep, true
}

// DiagHandler serves the incident view at prefix (normally
// "/debug/diag/"): GET {prefix}{request-id} renders the joined report,
// text by default, JSON with ?format=json. A missing ID is a usage
// error; an unknown ID is 404. A nil ring disables the endpoint.
func DiagHandler(d Diag, prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d.Ring == nil {
			http.Error(w, "wide events disabled (-wide-events 0)", http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, prefix)
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "usage: GET "+prefix+"{request-id}", http.StatusBadRequest)
			return
		}
		rep, ok := d.Report(id)
		if !ok {
			http.Error(w, "no wide event or trace for "+id, http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "diagnostic view: %s (correlation window ±%s)\n", id, rep.Window)
		fmt.Fprintf(w, "\n== wide event ==\n")
		if rep.HasEvent {
			writeEventText(w, rep.Event)
		} else {
			fmt.Fprintln(w, "(not in ring — sampled out or evicted)")
		}
		fmt.Fprintf(w, "\n== trace ==")
		if rep.Trace != nil {
			obs.WriteTraceText(w, *rep.Trace)
		} else {
			fmt.Fprintln(w, "\n(not in journal)")
		}
		fmt.Fprintf(w, "\n== audit events in window (%d) ==\n", len(rep.Audit))
		for _, a := range rep.Audit {
			fmt.Fprintf(w, "%s [%s] %s %s: %s\n",
				a.Time.Format(time.RFC3339), a.Severity, a.Rule, a.Scope, a.Message)
		}
		fmt.Fprintf(w, "\n== slo ==\n")
		if len(rep.SLO.Breached) == 0 && len(rep.SLO.Degraded) == 0 {
			fmt.Fprintln(w, "healthy")
		}
		for _, b := range rep.SLO.Breached {
			fmt.Fprintf(w, "breached: %s\n", b)
		}
		for _, c := range rep.SLO.Degraded {
			fmt.Fprintf(w, "degraded: %s\n", c)
		}
		fmt.Fprintf(w, "\n== profile artifacts in window (%d) ==\n", len(rep.Profiles))
		for _, p := range rep.Profiles {
			verified := "crc ok"
			if !p.Verified {
				verified = "CRC MISMATCH"
			}
			fmt.Fprintf(w, "%s %s cause=%s taken=%s %s -> %s\n",
				p.ID, p.Kind, p.Cause, p.TakenAt.Format(time.RFC3339), verified, p.Link)
		}
	})
}
