// Package wide implements wide-event telemetry: one flat, canonical
// record per unit of work — a served request, a store load, a watch
// evaluation, a mining run — carrying every dimension the other
// telemetry signals key on (request ID, route, status, latency,
// quarter, cache outcome, stale/shed/breaker flags, bytes, user, span
// summary, trace ID, profile artifact). Events land in a bounded
// in-memory columnar ring (struct-of-arrays) with a small filter/
// group-by/quantile query engine behind /debug/events, and the
// cross-signal join behind /debug/diag/{request-id}.
//
// The ring follows the repo's nil-receiver convention: a nil *Ring
// drops every emission with zero allocations, so every emission point
// calls Emit unconditionally.
package wide

import (
	"sync"
	"sync/atomic"
	"time"

	"maras/internal/obs"
)

// Event kinds: which unit of work the event describes.
const (
	KindRequest     = "request"
	KindStoreLoad   = "store_load"
	KindWatchEval   = "watch_eval"
	KindMine        = "mine"
	KindReplicaSync = "replica_sync"
)

// Event is one wide record. Only Time, Kind, and Duration are always
// meaningful; the remaining dimensions are populated where the kind
// has them (a store_load has a quarter but no route; a request has
// both when it touched the store).
type Event struct {
	Time       time.Time     `json:"time"`
	Kind       string        `json:"kind"`
	ID         string        `json:"id,omitempty"` // request ID; "" for background work
	Route      string        `json:"route,omitempty"`
	Status     int           `json:"status,omitempty"`
	Duration   time.Duration `json:"duration_ns"`
	Quarter    string        `json:"quarter,omitempty"`
	Cache      string        `json:"cache,omitempty"`  // lru_hit | lru_miss
	Origin     string        `json:"origin,omitempty"` // serving origin: local | stale | peer
	Stale      bool          `json:"stale,omitempty"`
	Shed       string        `json:"shed,omitempty"` // bulkhead shed reason
	Breaker    bool          `json:"breaker,omitempty"`
	Gzip       bool          `json:"gzip,omitempty"`
	Bytes      int64         `json:"bytes,omitempty"`
	User       string        `json:"user,omitempty"`
	Spans      int           `json:"spans,omitempty"`
	Slowest    string        `json:"slowest,omitempty"` // slowest child span name
	SlowestDur time.Duration `json:"slowest_ns,omitempty"`
	Trace      string        `json:"trace,omitempty"`   // journal trace ID
	Profile    string        `json:"profile,omitempty"` // profile artifact captured in-window
}

// DefaultCapacity is the ring size when NewRing gets zero.
const DefaultCapacity = 100_000

// Ring is the bounded columnar event store. Columns are parallel
// slices pre-allocated to capacity (struct-of-arrays): an emission is
// a cursor bump plus per-column stores under one short mutex hold —
// no per-event allocation — and a query scans cache-friendly columns
// instead of chasing per-event pointers. A nil *Ring no-ops.
type Ring struct {
	capacity int
	sample   int // keep every sample'th emission; 1 keeps all

	seq        atomic.Uint64 // emission counter for sampling, lock-free
	emitted    *obs.Counter  // stored events; nil without metrics
	sampledOut *obs.Counter
	linked     *obs.Counter // profile back-links applied

	mu   sync.Mutex
	n    int // rows filled, ≤ capacity
	next int // write cursor

	timeNS  []int64
	durNS   []int64
	slowNS  []int64
	bytes   []int64
	status  []int32
	spans   []int32
	stale   []bool
	gzip    []bool
	breaker []bool
	kind    []string
	id      []string
	route   []string
	quarter []string
	cache   []string
	origin  []string
	shed    []string
	user    []string
	slowest []string
	trace   []string
	profile []string
}

// NewRing builds a ring holding up to capacity events (<= 0 means
// DefaultCapacity), keeping every sample'th emission (<= 1 keeps all).
// When reg is non-nil the ring self-registers emission counters.
func NewRing(capacity, sample int, reg *obs.Registry) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if sample < 1 {
		sample = 1
	}
	r := &Ring{
		capacity: capacity,
		sample:   sample,
		timeNS:   make([]int64, capacity),
		durNS:    make([]int64, capacity),
		slowNS:   make([]int64, capacity),
		bytes:    make([]int64, capacity),
		status:   make([]int32, capacity),
		spans:    make([]int32, capacity),
		stale:    make([]bool, capacity),
		gzip:     make([]bool, capacity),
		breaker:  make([]bool, capacity),
		kind:     make([]string, capacity),
		id:       make([]string, capacity),
		route:    make([]string, capacity),
		quarter:  make([]string, capacity),
		cache:    make([]string, capacity),
		origin:   make([]string, capacity),
		shed:     make([]string, capacity),
		user:     make([]string, capacity),
		slowest:  make([]string, capacity),
		trace:    make([]string, capacity),
		profile:  make([]string, capacity),
	}
	if reg != nil {
		r.emitted = reg.Counter("maras_wide_events_total", "Wide events stored in the ring.")
		r.sampledOut = reg.Counter("maras_wide_events_sampled_out_total", "Wide events dropped by the sampling rate.")
		r.linked = reg.Counter("maras_wide_profile_links_total", "Wide events back-linked to a profile artifact.")
	}
	return r
}

// Capacity returns the ring's configured capacity (0 for a nil ring).
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return r.capacity
}

// Emit stores one wide event. A nil ring and the sampled-out path are
// both allocation-free, so hot paths emit unconditionally. A zero
// Time is stamped with now.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	if r.seq.Add(1)%uint64(r.sample) != 0 {
		if r.sampledOut != nil {
			r.sampledOut.Inc()
		}
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r.mu.Lock()
	i := r.next
	r.next = (r.next + 1) % r.capacity
	if r.n < r.capacity {
		r.n++
	}
	r.timeNS[i] = e.Time.UnixNano()
	r.durNS[i] = int64(e.Duration)
	r.slowNS[i] = int64(e.SlowestDur)
	r.bytes[i] = e.Bytes
	r.status[i] = int32(e.Status)
	r.spans[i] = int32(e.Spans)
	r.stale[i] = e.Stale
	r.gzip[i] = e.Gzip
	r.breaker[i] = e.Breaker
	r.kind[i] = e.Kind
	r.id[i] = e.ID
	r.route[i] = e.Route
	r.quarter[i] = e.Quarter
	r.cache[i] = e.Cache
	r.origin[i] = e.Origin
	r.shed[i] = e.Shed
	r.user[i] = e.User
	r.slowest[i] = e.Slowest
	r.trace[i] = e.Trace
	r.profile[i] = e.Profile
	r.mu.Unlock()
	if r.emitted != nil {
		r.emitted.Inc()
	}
}

// EmitRequest converts a completed HTTP request sample into a wide
// event and stores it — the function wired into HTTPMetrics.OnComplete.
func (r *Ring) EmitRequest(s obs.RequestSample) {
	if r == nil {
		return
	}
	r.Emit(RequestEvent(s))
}

// RequestEvent flattens a request sample into one wide event, deriving
// the cross-cutting dimensions (quarter, cache outcome, staleness,
// breaker state, shed reason, user) from the request's span attributes
// when a trace is attached.
func RequestEvent(s obs.RequestSample) Event {
	e := Event{
		Time:     s.Time,
		Kind:     KindRequest,
		ID:       s.RequestID,
		Route:    s.Route,
		Status:   s.Status,
		Duration: s.Duration,
		Bytes:    s.Bytes,
		Gzip:     s.Gzip,
		Stale:    s.Stale,
		Origin:   s.Origin,
	}
	tr := s.Trace
	if tr == nil {
		return e
	}
	e.Trace = tr.ID
	e.Spans = len(tr.Spans)
	var slowest obs.SpanRecord
	for _, sp := range tr.Spans {
		if sp.Parent >= 0 && sp.DurationNS > slowest.DurationNS {
			slowest = sp
		}
		for k, v := range sp.Attrs {
			switch k {
			case "quarter":
				if e.Quarter == "" {
					e.Quarter = v
				}
			case "cache":
				if e.Cache == "" {
					e.Cache = v
				}
			case "origin":
				if e.Origin == "" {
					e.Origin = v
				}
			case "stale":
				if v == "true" {
					e.Stale = true
				}
			case "breaker":
				if v == "open" {
					e.Breaker = true
				}
			case "shed":
				if sp.Parent == -1 && e.Shed == "" {
					e.Shed = v
				}
			case "user":
				if e.User == "" {
					e.User = v
				}
			}
		}
	}
	if slowest.DurationNS > 0 {
		e.Slowest = slowest.Name
		e.SlowestDur = time.Duration(slowest.DurationNS)
	}
	return e
}

// LinkProfile back-fills the Profile column on events whose time falls
// within ±window of takenAt and that have no profile link yet — called
// from the profile store's OnAdd hook so an incident's wide events
// point at the artifact captured while they were in flight. Returns
// how many events were linked.
func (r *Ring) LinkProfile(id string, takenAt time.Time, window time.Duration) int {
	if r == nil || id == "" {
		return 0
	}
	from := takenAt.Add(-window).UnixNano()
	to := takenAt.Add(window).UnixNano()
	linked := 0
	r.mu.Lock()
	for k := 0; k < r.n; k++ {
		i := r.rowAt(k)
		if r.timeNS[i] < from || r.timeNS[i] > to || r.profile[i] != "" {
			continue
		}
		r.profile[i] = id
		linked++
	}
	r.mu.Unlock()
	if r.linked != nil {
		r.linked.Add(int64(linked))
	}
	return linked
}

// rowAt maps a newest-first position k (0 = most recent) to a column
// index. Callers hold r.mu. The formula is valid whether or not the
// ring has wrapped: before wrapping next == n, so next-1-k walks the
// filled prefix backwards.
func (r *Ring) rowAt(k int) int {
	return ((r.next-1-k)%r.capacity + r.capacity) % r.capacity
}

// eventAt materializes the event at newest-first position k. Callers
// hold r.mu.
func (r *Ring) eventAt(k int) Event {
	i := r.rowAt(k)
	return Event{
		Time:       time.Unix(0, r.timeNS[i]),
		Kind:       r.kind[i],
		ID:         r.id[i],
		Route:      r.route[i],
		Status:     int(r.status[i]),
		Duration:   time.Duration(r.durNS[i]),
		Quarter:    r.quarter[i],
		Cache:      r.cache[i],
		Origin:     r.origin[i],
		Stale:      r.stale[i],
		Shed:       r.shed[i],
		Breaker:    r.breaker[i],
		Gzip:       r.gzip[i],
		Bytes:      r.bytes[i],
		User:       r.user[i],
		Spans:      int(r.spans[i]),
		Slowest:    r.slowest[i],
		SlowestDur: time.Duration(r.slowNS[i]),
		Trace:      r.trace[i],
		Profile:    r.profile[i],
	}
}

// Find returns the most recent event whose request ID or trace ID
// matches id. A nil ring finds nothing.
func (r *Ring) Find(id string) (Event, bool) {
	if r == nil || id == "" {
		return Event{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := 0; k < r.n; k++ {
		i := r.rowAt(k)
		if r.id[i] == id || r.trace[i] == id {
			return r.eventAt(k), true
		}
	}
	return Event{}, false
}

// Stats summarizes ring occupancy and sampling.
type Stats struct {
	Capacity int    `json:"capacity"`
	Len      int    `json:"len"`
	Sample   int    `json:"sample"`
	Emitted  uint64 `json:"emitted"`
}

// RingStats returns occupancy totals (zero value for a nil ring).
func (r *Ring) RingStats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	return Stats{Capacity: r.capacity, Len: n, Sample: r.sample, Emitted: r.seq.Load()}
}
