package wide

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Query is a parsed /debug/events request: equality filters, an
// optional group-by dimension with a latency aggregate, a lookback
// window, and a row limit for ungrouped listings.
type Query struct {
	Where  []Cond
	Group  string
	Agg    string // count | avg | max | p50 | p90 | p95 | p99
	Window time.Duration
	Limit  int
}

// Cond is one key=value equality filter.
type Cond struct {
	Field string
	Value string
}

// DefaultLimit bounds ungrouped event listings.
const DefaultLimit = 100

// queryFields are the dimensions usable in where= and group=. "code"
// is the status class (2xx/4xx/5xx) derived from status.
var queryFields = map[string]bool{
	"kind": true, "id": true, "route": true, "status": true, "code": true,
	"quarter": true, "cache": true, "origin": true, "stale": true,
	"shed": true, "breaker": true, "gzip": true, "user": true,
	"slowest": true, "trace": true, "profile": true,
}

var aggregates = map[string]bool{
	"count": true, "avg": true, "max": true,
	"p50": true, "p90": true, "p95": true, "p99": true,
}

// ParseQuery interprets URL parameters: where=key=value (repeatable),
// group=key, agg=count|avg|max|p50|p90|p95|p99 (default count),
// window=5m, limit=N.
func ParseQuery(v url.Values) (Query, error) {
	q := Query{Agg: "count", Limit: DefaultLimit}
	for _, raw := range v["where"] {
		field, val, ok := strings.Cut(raw, "=")
		if !ok {
			return q, fmt.Errorf("where=%q: want key=value", raw)
		}
		if !queryFields[field] {
			return q, fmt.Errorf("where: unknown field %q", field)
		}
		q.Where = append(q.Where, Cond{Field: field, Value: val})
	}
	if g := v.Get("group"); g != "" {
		if !queryFields[g] {
			return q, fmt.Errorf("group: unknown field %q", g)
		}
		q.Group = g
	}
	if a := v.Get("agg"); a != "" {
		if !aggregates[a] {
			return q, fmt.Errorf("agg: unknown aggregate %q", a)
		}
		q.Agg = a
	}
	if w := v.Get("window"); w != "" {
		d, err := time.ParseDuration(w)
		if err != nil || d <= 0 {
			return q, fmt.Errorf("window=%q: want a positive duration like 5m", w)
		}
		q.Window = d
	}
	if l := v.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("limit=%q: want a positive integer", l)
		}
		q.Limit = n
	}
	return q, nil
}

// GroupRow is one group-by bucket: its key, how many events matched,
// and the requested latency aggregate in milliseconds.
type GroupRow struct {
	Key   string  `json:"key"`
	Count int     `json:"count"`
	Value float64 `json:"value_ms"`
}

// Result is a query answer: grouped rows when Group is set, otherwise
// matching events newest-first up to the limit. Matched counts every
// event passing the filters regardless of the limit.
type Result struct {
	Stats   Stats      `json:"stats"`
	Matched int        `json:"matched"`
	Groups  []GroupRow `json:"groups,omitempty"`
	Agg     string     `json:"agg,omitempty"`
	Events  []Event    `json:"events,omitempty"`
}

// fieldValue renders field for row index i as the string form the
// query engine compares and groups on. Callers hold r.mu.
func (r *Ring) fieldValue(field string, i int) string {
	switch field {
	case "kind":
		return r.kind[i]
	case "id":
		return r.id[i]
	case "route":
		return r.route[i]
	case "status":
		return strconv.Itoa(int(r.status[i]))
	case "code":
		if r.status[i] == 0 {
			return ""
		}
		return strconv.Itoa(int(r.status[i])/100) + "xx"
	case "quarter":
		return r.quarter[i]
	case "cache":
		return r.cache[i]
	case "origin":
		return r.origin[i]
	case "stale":
		return strconv.FormatBool(r.stale[i])
	case "shed":
		return r.shed[i]
	case "breaker":
		return strconv.FormatBool(r.breaker[i])
	case "gzip":
		return strconv.FormatBool(r.gzip[i])
	case "user":
		return r.user[i]
	case "slowest":
		return r.slowest[i]
	case "trace":
		return r.trace[i]
	case "profile":
		return r.profile[i]
	}
	return ""
}

// Run executes a query over the ring's current contents. The scan is
// newest-first over the columns under the ring lock; quantiles are
// computed after the lock is released. A nil ring returns an empty
// result.
func (r *Ring) Run(q Query) Result {
	res := Result{Agg: q.Agg}
	if r == nil {
		return res
	}
	if q.Limit <= 0 {
		q.Limit = DefaultLimit
	}
	var cutoff int64
	if q.Window > 0 {
		cutoff = time.Now().Add(-q.Window).UnixNano()
	}
	groups := map[string][]int64{}
	r.mu.Lock()
	res.Stats = Stats{Capacity: r.capacity, Len: r.n, Sample: r.sample, Emitted: r.seq.Load()}
scan:
	for k := 0; k < r.n; k++ {
		i := r.rowAt(k)
		if cutoff != 0 && r.timeNS[i] < cutoff {
			// Rows are newest-first but emission times are not strictly
			// monotonic (background emitters stamp their own clocks), so
			// keep scanning rather than early-exiting.
			continue
		}
		for _, c := range q.Where {
			if r.fieldValue(c.Field, i) != c.Value {
				continue scan
			}
		}
		res.Matched++
		if q.Group != "" {
			key := r.fieldValue(q.Group, i)
			if key == "" {
				key = "(none)"
			}
			groups[key] = append(groups[key], r.durNS[i])
		} else if len(res.Events) < q.Limit {
			res.Events = append(res.Events, r.eventAt(k))
		}
	}
	r.mu.Unlock()
	if q.Group == "" {
		return res
	}
	res.Groups = make([]GroupRow, 0, len(groups))
	for key, durs := range groups {
		res.Groups = append(res.Groups, GroupRow{
			Key:   key,
			Count: len(durs),
			Value: aggregate(q.Agg, durs),
		})
	}
	// Largest buckets first, then by key for determinism.
	sort.Slice(res.Groups, func(a, b int) bool {
		if res.Groups[a].Count != res.Groups[b].Count {
			return res.Groups[a].Count > res.Groups[b].Count
		}
		return res.Groups[a].Key < res.Groups[b].Key
	})
	return res
}

// aggregate reduces a bucket's latencies (ns) to the requested
// aggregate in milliseconds. count returns the count itself.
func aggregate(agg string, durs []int64) float64 {
	if len(durs) == 0 {
		return 0
	}
	switch agg {
	case "count":
		return float64(len(durs))
	case "avg":
		var sum int64
		for _, d := range durs {
			sum += d
		}
		return float64(sum) / float64(len(durs)) / 1e6
	case "max":
		max := durs[0]
		for _, d := range durs[1:] {
			if d > max {
				max = d
			}
		}
		return float64(max) / 1e6
	case "p50":
		return quantile(durs, 0.50)
	case "p90":
		return quantile(durs, 0.90)
	case "p95":
		return quantile(durs, 0.95)
	case "p99":
		return quantile(durs, 0.99)
	}
	return 0
}

// quantile returns the q-quantile of durs in milliseconds
// (nearest-rank on the sorted values; durs is sorted in place).
func quantile(durs []int64, q float64) float64 {
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	idx := int(q * float64(len(durs)-1))
	return float64(durs[idx]) / 1e6
}
