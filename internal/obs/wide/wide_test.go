package wide

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"maras/internal/obs"
)

func TestRingEmitAndFind(t *testing.T) {
	r := NewRing(4, 1, nil)
	for i := 0; i < 6; i++ {
		r.Emit(Event{Kind: KindRequest, ID: "req-" + strconv.Itoa(i), Duration: time.Duration(i) * time.Millisecond})
	}
	st := r.RingStats()
	if st.Len != 4 || st.Capacity != 4 {
		t.Fatalf("stats = %+v, want len=4 cap=4", st)
	}
	if st.Emitted != 6 {
		t.Fatalf("emitted = %d, want 6", st.Emitted)
	}
	// Oldest two wrapped away.
	if _, ok := r.Find("req-0"); ok {
		t.Fatal("req-0 should have been evicted")
	}
	e, ok := r.Find("req-5")
	if !ok || e.Duration != 5*time.Millisecond {
		t.Fatalf("Find(req-5) = %+v, %v", e, ok)
	}
	// Find by trace ID too.
	r.Emit(Event{Kind: KindStoreLoad, Trace: "tr-9"})
	if _, ok := r.Find("tr-9"); !ok {
		t.Fatal("Find by trace ID failed")
	}
}

func TestRingSampling(t *testing.T) {
	r := NewRing(100, 10, nil)
	for i := 0; i < 100; i++ {
		r.Emit(Event{Kind: KindRequest})
	}
	if st := r.RingStats(); st.Len != 10 {
		t.Fatalf("with sample=10, 100 emissions should store 10, got %d", st.Len)
	}
}

func TestNilRingSafe(t *testing.T) {
	var r *Ring
	r.Emit(Event{Kind: KindRequest})
	r.EmitRequest(obs.RequestSample{})
	if n := r.LinkProfile("p", time.Now(), time.Minute); n != 0 {
		t.Fatalf("nil LinkProfile = %d", n)
	}
	if _, ok := r.Find("x"); ok {
		t.Fatal("nil Find should miss")
	}
	if got := r.Run(Query{}); got.Matched != 0 {
		t.Fatalf("nil Run matched %d", got.Matched)
	}
	if r.Capacity() != 0 || r.RingStats() != (Stats{}) {
		t.Fatal("nil stats should be zero")
	}
}

func TestRequestEventDerivesDims(t *testing.T) {
	tr := &obs.TraceRecord{
		ID: "abc123",
		Spans: []obs.SpanRecord{
			{ID: 0, Parent: -1, Name: "GET /api/quarters/", DurationNS: int64(50 * time.Millisecond),
				Attrs: map[string]string{"shed": "bulkhead_full"}},
			{ID: 1, Parent: 0, Name: "store_load", DurationNS: int64(40 * time.Millisecond),
				Attrs: map[string]string{"quarter": "2014Q2", "cache": "lru_miss", "stale": "true"}},
			{ID: 2, Parent: 0, Name: "render", DurationNS: int64(5 * time.Millisecond),
				Attrs: map[string]string{"breaker": "open", "user": "alice"}},
		},
	}
	e := RequestEvent(obs.RequestSample{
		RequestID: "abc123", Route: "/api/quarters/", Status: 503,
		Duration: 50 * time.Millisecond, Bytes: 128, Gzip: true, Trace: tr,
	})
	if e.Kind != KindRequest || e.ID != "abc123" || e.Trace != "abc123" {
		t.Fatalf("identity wrong: %+v", e)
	}
	if e.Quarter != "2014Q2" || e.Cache != "lru_miss" || !e.Stale || !e.Breaker {
		t.Fatalf("derived dims wrong: %+v", e)
	}
	if e.Shed != "bulkhead_full" || e.User != "alice" {
		t.Fatalf("shed/user wrong: %+v", e)
	}
	if e.Spans != 3 || e.Slowest != "store_load" || e.SlowestDur != 40*time.Millisecond {
		t.Fatalf("span summary wrong: %+v", e)
	}
}

func TestRequestEventNoTrace(t *testing.T) {
	e := RequestEvent(obs.RequestSample{RequestID: "x", Route: "/healthz", Status: 200})
	if e.Trace != "" || e.Spans != 0 {
		t.Fatalf("traceless sample should have no trace dims: %+v", e)
	}
}

func TestLinkProfile(t *testing.T) {
	r := NewRing(8, 1, nil)
	now := time.Now()
	r.Emit(Event{Kind: KindRequest, ID: "in-window", Time: now})
	r.Emit(Event{Kind: KindRequest, ID: "out-of-window", Time: now.Add(-time.Hour)})
	r.Emit(Event{Kind: KindRequest, ID: "already-linked", Time: now, Profile: "old"})
	if n := r.LinkProfile("7-cpu", now, time.Minute); n != 1 {
		t.Fatalf("linked %d, want 1", n)
	}
	e, _ := r.Find("in-window")
	if e.Profile != "7-cpu" {
		t.Fatalf("in-window profile = %q", e.Profile)
	}
	e, _ = r.Find("already-linked")
	if e.Profile != "old" {
		t.Fatalf("already-linked profile overwritten: %q", e.Profile)
	}
	e, _ = r.Find("out-of-window")
	if e.Profile != "" {
		t.Fatalf("out-of-window got linked: %q", e.Profile)
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(url.Values{
		"where":  []string{"route=/api/quarters/", "code=5xx"},
		"group":  []string{"quarter"},
		"agg":    []string{"p99"},
		"window": []string{"5m"},
		"limit":  []string{"7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 || q.Group != "quarter" || q.Agg != "p99" ||
		q.Window != 5*time.Minute || q.Limit != 7 {
		t.Fatalf("parsed %+v", q)
	}
	for _, bad := range []url.Values{
		{"where": []string{"noequals"}},
		{"where": []string{"bogus=x"}},
		{"group": []string{"bogus"}},
		{"agg": []string{"p42"}},
		{"window": []string{"yesterday"}},
		{"limit": []string{"-1"}},
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Fatalf("ParseQuery(%v) should fail", bad)
		}
	}
}

func TestQueryGroupAndFilter(t *testing.T) {
	r := NewRing(64, 1, nil)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindRequest, Route: "/a", Status: 200, Duration: time.Duration(i+1) * time.Millisecond})
	}
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindRequest, Route: "/b", Status: 500, Duration: 100 * time.Millisecond})
	}
	res := r.Run(Query{Group: "route", Agg: "p50"})
	if res.Matched != 15 || len(res.Groups) != 2 {
		t.Fatalf("matched=%d groups=%d", res.Matched, len(res.Groups))
	}
	// Largest group first.
	if res.Groups[0].Key != "/a" || res.Groups[0].Count != 10 {
		t.Fatalf("groups[0] = %+v", res.Groups[0])
	}
	// p50 of 1..10ms (nearest rank at index 4) is 5ms.
	if res.Groups[0].Value != 5 {
		t.Fatalf("p50(/a) = %v, want 5", res.Groups[0].Value)
	}
	res = r.Run(Query{Where: []Cond{{Field: "code", Value: "5xx"}}})
	if res.Matched != 5 || len(res.Events) != 5 {
		t.Fatalf("code=5xx matched=%d events=%d", res.Matched, len(res.Events))
	}
	for _, e := range res.Events {
		if e.Status != 500 {
			t.Fatalf("filter leaked %+v", e)
		}
	}
	// Limit bounds events but not the matched count.
	res = r.Run(Query{Limit: 3})
	if res.Matched != 15 || len(res.Events) != 3 {
		t.Fatalf("limit: matched=%d events=%d", res.Matched, len(res.Events))
	}
	// Newest first.
	if res.Events[0].Route != "/b" {
		t.Fatalf("events[0] = %+v, want newest (/b)", res.Events[0])
	}
}

func TestQueryWindow(t *testing.T) {
	r := NewRing(16, 1, nil)
	r.Emit(Event{Kind: KindRequest, Time: time.Now().Add(-time.Hour)})
	r.Emit(Event{Kind: KindRequest})
	res := r.Run(Query{Window: 5 * time.Minute, Limit: DefaultLimit})
	if res.Matched != 1 {
		t.Fatalf("window matched %d, want 1", res.Matched)
	}
}

func TestAggregates(t *testing.T) {
	durs := []int64{int64(time.Millisecond), int64(3 * time.Millisecond), int64(2 * time.Millisecond)}
	if got := aggregate("max", append([]int64(nil), durs...)); got != 3 {
		t.Fatalf("max = %v", got)
	}
	if got := aggregate("avg", append([]int64(nil), durs...)); got != 2 {
		t.Fatalf("avg = %v", got)
	}
	if got := aggregate("count", durs); got != 3 {
		t.Fatalf("count = %v", got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRing(16, 1, nil)
	r.Emit(Event{Kind: KindRequest, ID: "req-1", Route: "/api/quarters/", Status: 200,
		Duration: 3 * time.Millisecond, Quarter: "2014Q1", Trace: "req-1"})
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "id=req-1") {
		t.Fatalf("text view: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?group=route&agg=p99&format=json", nil))
	var res Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Key != "/api/quarters/" {
		t.Fatalf("json groups: %+v", res.Groups)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?where=bogus=1", nil))
	if rec.Code != 400 {
		t.Fatalf("bad query = %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != 404 {
		t.Fatalf("nil ring = %d, want 404", rec.Code)
	}
}

func TestDiagReportAndHandler(t *testing.T) {
	r := NewRing(16, 1, nil)
	now := time.Now()
	r.Emit(Event{Kind: KindRequest, ID: "deadbeef", Route: "/api/quarters/", Status: 200,
		Duration: 300 * time.Millisecond, Time: now, Trace: "deadbeef", Profile: "3-cpu"})
	trace := obs.TraceRecord{ID: "deadbeef", Name: "GET /api/quarters/", Slow: true,
		DurationNS: int64(300 * time.Millisecond),
		Spans:      []obs.SpanRecord{{Parent: -1, Name: "GET /api/quarters/", DurationNS: int64(300 * time.Millisecond)}}}
	d := Diag{
		Ring: r,
		FindTrace: func(id string) (obs.TraceRecord, bool) {
			return trace, id == "deadbeef"
		},
		Audit: func(from, to time.Time) []DiagAuditEvent {
			if now.Before(from) || now.After(to) {
				t.Fatalf("window [%s, %s] should contain %s", from, to, now)
			}
			return []DiagAuditEvent{{Time: now, Rule: "slow_trace", Severity: "warn", Message: "slow request"}}
		},
		SLO: func() SLOState { return SLOState{Breached: []string{"availability"}} },
		Profiles: func(from, to time.Time) []ProfileRef {
			return []ProfileRef{{ID: "3-cpu", Kind: "cpu", Verified: true, Link: "/debug/profiles/3-cpu"}}
		},
	}
	rep, ok := d.Report("deadbeef")
	if !ok || !rep.HasEvent || rep.Trace == nil {
		t.Fatalf("report = %+v, %v", rep, ok)
	}
	if len(rep.Audit) != 1 || len(rep.Profiles) != 1 || len(rep.SLO.Breached) != 1 {
		t.Fatalf("joins missing: %+v", rep)
	}

	h := DiagHandler(d, "/debug/diag/")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/diag/deadbeef", nil))
	body := rec.Body.String()
	for _, want := range []string{"wide event", "trace deadbeef", "slow_trace", "breached: availability", "3-cpu"} {
		if !strings.Contains(body, want) {
			t.Fatalf("diag text missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/diag/deadbeef?format=json", nil))
	var jr DiagReport
	if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	if !jr.HasEvent || jr.Trace == nil || len(jr.Profiles) != 1 {
		t.Fatalf("diag json: %+v", jr)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/diag/", nil))
	if rec.Code != 400 {
		t.Fatalf("no id = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/diag/unknown", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	DiagHandler(Diag{}, "/debug/diag/").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/diag/x", nil))
	if rec.Code != 404 {
		t.Fatalf("nil ring diag = %d, want 404", rec.Code)
	}
}

// Trace-only diag: the event was sampled out but the journal still has
// the trace — the view degrades instead of 404ing.
func TestDiagTraceOnly(t *testing.T) {
	d := Diag{
		Ring: NewRing(4, 1, nil),
		FindTrace: func(id string) (obs.TraceRecord, bool) {
			return obs.TraceRecord{ID: id, Start: time.Now()}, id == "ghost"
		},
	}
	rep, ok := d.Report("ghost")
	if !ok || rep.HasEvent || rep.Trace == nil {
		t.Fatalf("trace-only report = %+v, %v", rep, ok)
	}
}

func TestEmitZeroAllocWhenDisabled(t *testing.T) {
	var nilRing *Ring
	e := Event{Kind: KindRequest, ID: "x"}
	if n := testing.AllocsPerRun(100, func() { nilRing.Emit(e) }); n != 0 {
		t.Fatalf("nil ring Emit allocates %v/op", n)
	}
	sampled := NewRing(8, 1000, nil)
	if n := testing.AllocsPerRun(100, func() { sampled.Emit(e) }); n != 0 {
		t.Fatalf("sampled-out Emit allocates %v/op", n)
	}
}
