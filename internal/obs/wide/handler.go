package wide

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Handler serves the wide-event ring at /debug/events. Without
// parameters it lists recent events newest-first; ?where=key=value
// (repeatable), ?group=key&agg=p99, ?window=5m, and ?limit=N shape
// the query; ?format=json returns the structured result. A nil ring
// answers 404 so the route can be mounted unconditionally.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "wide events disabled (-wide-events 0)", http.StatusNotFound)
			return
		}
		q, err := ParseQuery(req.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res := r.Run(q)
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(res)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "wide events: %d/%d held (sample 1/%d, %d emitted), %d matched\n",
			res.Stats.Len, res.Stats.Capacity, res.Stats.Sample, res.Stats.Emitted, res.Matched)
		if len(q.Where) > 0 || q.Window > 0 {
			fmt.Fprintf(w, "filter:")
			for _, c := range q.Where {
				fmt.Fprintf(w, " %s=%s", c.Field, c.Value)
			}
			if q.Window > 0 {
				fmt.Fprintf(w, " window=%s", q.Window)
			}
			fmt.Fprintln(w)
		}
		if q.Group != "" {
			fmt.Fprintf(w, "\n%-32s %8s %12s\n", q.Group, "count", q.Agg+"(ms)")
			for _, g := range res.Groups {
				fmt.Fprintf(w, "%-32s %8d %12.3f\n", g.Key, g.Count, g.Value)
			}
			return
		}
		fmt.Fprintln(w)
		for _, e := range res.Events {
			writeEventText(w, e)
		}
	})
}

// writeEventText renders one event as a single key=value line, empty
// dimensions omitted — the flat "wide row" view.
func writeEventText(w io.Writer, e Event) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-10s", e.Time.Format(time.RFC3339Nano), e.Kind)
	add := func(k, v string) {
		if v != "" {
			b.WriteByte(' ')
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	add("id", e.ID)
	add("route", e.Route)
	if e.Status != 0 {
		fmt.Fprintf(&b, " status=%d", e.Status)
	}
	fmt.Fprintf(&b, " dur=%s", e.Duration.Round(time.Microsecond))
	add("quarter", e.Quarter)
	add("cache", e.Cache)
	if e.Stale {
		b.WriteString(" stale=true")
	}
	add("shed", e.Shed)
	if e.Breaker {
		b.WriteString(" breaker=open")
	}
	if e.Gzip {
		b.WriteString(" gzip=true")
	}
	if e.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", e.Bytes)
	}
	add("user", e.User)
	if e.Spans > 0 {
		fmt.Fprintf(&b, " spans=%d", e.Spans)
	}
	if e.Slowest != "" {
		fmt.Fprintf(&b, " slowest=%s(%s)", e.Slowest, e.SlowestDur.Round(time.Microsecond))
	}
	add("trace", e.Trace)
	add("profile", e.Profile)
	b.WriteByte('\n')
	io.WriteString(w, b.String())
}
