package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (e.g. route="/signal/").
type Label struct{ Key, Value string }

// L is a convenience constructor: L("route", "/", "code", "2xx").
// Keys and values alternate; an odd trailing key is dropped.
func L(kv ...string) []Label {
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Label{kv[i], kv[i+1]})
	}
	return out
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set forces the gauge to n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 — burn rates, budget
// fractions, and ratios need sub-unit resolution the int64 Gauge
// cannot carry. It renders as TYPE gauge.
type FloatGauge struct{ bits atomic.Uint64 }

// Set forces the gauge to v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution (Prometheus classic
// histogram semantics: cumulative buckets plus sum and count). Each
// bucket additionally remembers the last exemplar observed into it —
// a trace ID, the exact value, and when — so the OpenMetrics rendering
// can link a latency bucket straight to /debug/diag/{trace-id}.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
	// ex holds one exemplar pointer per finite bucket plus the +Inf
	// slot at the end. Written with a plain pointer store (last writer
	// wins; exemplars are samples, not ledgers).
	ex []atomic.Pointer[Exemplar]
}

// Exemplar is the last observation recorded into one histogram bucket
// with an identity attached: the trace (request) ID that produced the
// value, for OpenMetrics `# {trace_id="..."}` rendering.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// DefaultLatencyBuckets are the fixed request-latency bucket bounds
// in seconds (0.5ms .. 10s).
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)),
		ex:     make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.observe(v, "") }

// ObserveExemplar records one sample and pins it as the bucket's
// exemplar under traceID (an empty ID records the sample without an
// exemplar, exactly like Observe).
func (h *Histogram) ObserveExemplar(v float64, traceID string) { h.observe(v, traceID) }

func (h *Histogram) observe(v float64, traceID string) {
	// Cumulative at render time; store per-bucket here.
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.counts) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	if traceID != "" {
		h.ex[idx].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// BucketExemplar returns bucket i's exemplar (i == len(bounds) is the
// +Inf bucket), or nil when none has been observed.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds,
// then the +Inf count.
func (h *Histogram) snapshot() ([]int64, int64) {
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run + h.inf.Load()
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// family is a named metric with HELP/TYPE metadata and its labeled
// series.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]*series // key = canonical label string
	order           []string
}

// Registry holds metric families and renders them as Prometheus
// exposition text or an expvar-friendly JSON snapshot.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// labelKey builds the canonical series key. Separator characters
// inside values are escaped so hostile values (a value containing
// `,` or `=`) cannot collide two distinct label sets onto one series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	esc := func(s string) {
		for i := 0; i < len(s); i++ {
			switch c := s[i]; c {
			case '\\', '=', ',':
				b.WriteByte('\\')
				b.WriteByte(c)
			default:
				b.WriteByte(c)
			}
		}
	}
	for _, l := range labels {
		esc(l.Key)
		b.WriteByte('=')
		esc(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		cp := make([]Label, len(labels))
		copy(cp, labels)
		s = &series{labels: cp}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns (creating on first use) the counter series of the
// named family with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.family(name, help, typeCounter).get(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (creating on first use) the gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.family(name, help, typeGauge).get(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// FloatGauge returns (creating on first use) a float-valued gauge
// series. A family must stay homogeneous: mixing Gauge and FloatGauge
// series under one name renders both, so pick one per family.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	s := r.family(name, help, typeGauge).get(labels)
	if s.fg == nil {
		s.fg = &FloatGauge{}
	}
	return s.fg
}

// Histogram returns (creating on first use) the histogram series
// with the given fixed bucket upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	s := r.family(name, help, typeHistogram).get(labels)
	if s.h == nil {
		s.h = newHistogram(buckets)
	}
	return s.h
}

// escapeLabelValue escapes a Prometheus label value per the
// exposition format: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP comment text per the exposition format:
// only backslash and newline (quotes stay literal in comments).
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels formats {k="v",...}; extra appends additional pairs
// (used for the le bucket bound).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (HELP/TYPE comments, escaped labels, cumulative
// histogram buckets with sum and count).
func (r *Registry) WritePrometheus(w io.Writer) { r.writeExposition(w, false) }

// WriteOpenMetrics renders the same families in OpenMetrics text
// format: identical lines, plus `# {trace_id="..."} value timestamp`
// exemplar suffixes on histogram bucket lines that have observed one.
// The caller owns the terminal `# EOF` line (runtime series are
// usually appended first).
func (r *Registry) WriteOpenMetrics(w io.Writer) { r.writeExposition(w, true) }

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) {
	r.mu.Lock()
	names := append([]string{}, r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		keys := append([]string{}, f.order...)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.Unlock()
		for _, s := range sers {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
			case typeGauge:
				if s.fg != nil {
					fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.fg.Value()))
				} else {
					fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.g.Value())
				}
			case typeHistogram:
				cum, total := s.h.snapshot()
				for i, bound := range s.h.bounds {
					fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
						renderLabels(s.labels, Label{"le", formatFloat(bound)}), cum[i],
						exemplarSuffix(s.h, i, openMetrics))
				}
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
					renderLabels(s.labels, Label{"le", "+Inf"}), total,
					exemplarSuffix(s.h, len(s.h.bounds), openMetrics))
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), total)
			}
		}
	}
}

// exemplarSuffix renders bucket i's exemplar as an OpenMetrics
// ` # {trace_id="..."} value timestamp` suffix, or "" when exemplars
// are off (classic Prometheus text) or the bucket has none.
func exemplarSuffix(h *Histogram, i int, openMetrics bool) string {
	if !openMetrics {
		return ""
	}
	e := h.BucketExemplar(i)
	if e == nil {
		return ""
	}
	ts := float64(e.Time.UnixNano()) / 1e9
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
		escapeLabelValue(e.TraceID), formatFloat(e.Value),
		strconv.FormatFloat(ts, 'f', 3, 64))
}

// runtimeSamples are the runtime/metrics series exported alongside
// the registry on every scrape.
var runtimeSamples = []struct {
	metric, name, help string
}{
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes of allocated heap objects."},
	{"/gc/heap/allocs:bytes", "go_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles."},
	{"/sched/goroutines:goroutines", "go_goroutines", "Current number of goroutines."},
}

// WriteRuntimePrometheus renders a small fixed set of Go runtime
// health series (heap bytes, GC cycles, goroutines).
func WriteRuntimePrometheus(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].metric
	}
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		v := samples[i].Value
		if v.Kind() != metrics.KindUint64 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			rs.name, rs.help, rs.name, rs.name, v.Uint64())
	}
	// NumGoroutine is also available without runtime/metrics; keep the
	// sample above authoritative and add CPU count for capacity math.
	fmt.Fprintf(w, "# HELP go_cpus Number of usable CPUs.\n# TYPE go_cpus gauge\ngo_cpus %d\n",
		runtime.NumCPU())
}

// Snapshot returns a JSON-ready view of the registry: family name →
// series label string → value (histograms expose count/sum/buckets).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.mu.Lock()
	names := append([]string{}, r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		fam := map[string]any{}
		f.mu.Lock()
		for _, key := range f.order {
			s := f.series[key]
			lbl := strings.TrimSuffix(renderLabels(s.labels), "}")
			lbl = strings.TrimPrefix(lbl, "{")
			switch f.typ {
			case typeCounter:
				fam[lbl] = s.c.Value()
			case typeGauge:
				if s.fg != nil {
					fam[lbl] = s.fg.Value()
				} else {
					fam[lbl] = s.g.Value()
				}
			case typeHistogram:
				cum, total := s.h.snapshot()
				buckets := map[string]int64{}
				for i, bound := range s.h.bounds {
					buckets[formatFloat(bound)] = cum[i]
				}
				buckets["+Inf"] = total
				fam[lbl] = map[string]any{
					"count":   total,
					"sum":     s.h.Sum(),
					"buckets": buckets,
				}
			}
		}
		f.mu.Unlock()
		out[name] = fam
	}
	return out
}

// SeriesKey renders the canonical identity of a series —
// name{k="v",...}, exactly as WritePrometheus prints it — used by the
// history layer to key per-series rings and by /api/history lookups.
func SeriesKey(name string, labels []Label) string {
	return name + renderLabels(labels)
}

// SeriesSnapshot is one series' instantaneous state in typed form:
// the scrape surface behind internal/obs/history (WritePrometheus is
// the same data rendered as exposition text).
type SeriesSnapshot struct {
	Name   string
	Type   string // "counter", "gauge", "histogram"
	Labels []Label
	// Value carries the counter count or gauge level.
	Value float64
	// Histogram state: finite bucket upper bounds, cumulative counts
	// aligned with them, the total count (including +Inf), and the sum.
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Gather snapshots every series in registration order. Bounds aliases
// the histogram's immutable bounds slice; Cumulative is freshly
// allocated per call.
func (r *Registry) Gather() []SeriesSnapshot {
	r.mu.Lock()
	names := append([]string{}, r.order...)
	r.mu.Unlock()
	var out []SeriesSnapshot
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if f == nil {
			continue
		}
		f.mu.Lock()
		sers := make([]*series, 0, len(f.order))
		for _, k := range f.order {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		for _, s := range sers {
			sn := SeriesSnapshot{Name: f.name, Type: f.typ, Labels: s.labels}
			switch f.typ {
			case typeCounter:
				sn.Value = float64(s.c.Value())
			case typeGauge:
				if s.fg != nil {
					sn.Value = s.fg.Value()
				} else {
					sn.Value = float64(s.g.Value())
				}
			case typeHistogram:
				cum, total := s.h.snapshot()
				sn.Bounds = s.h.bounds
				sn.Cumulative = cum
				sn.Count = total
				sn.Sum = s.h.Sum()
			}
			out = append(out, sn)
		}
	}
	return out
}

// PublishExpvar publishes the registry snapshot as a named expvar
// variable so it appears in /debug/vars. Publishing the same name
// twice panics in expvar, so this is guarded for reuse in tests.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
