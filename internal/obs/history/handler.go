package history

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"maras/internal/obs"
)

// defaultSampleCap bounds how many samples one API response carries
// unless the client narrows it with ?n=.
const defaultSampleCap = 500

// Handler serves the scraper overview at /debug/history: a
// plain-text series table by default, the structured dump with
// ?format=json. A nil history answers 404 so the route can be
// mounted unconditionally.
func Handler(h *History) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h == nil {
			http.Error(w, "metrics history disabled (-history-scrape 0)", http.StatusNotFound)
			return
		}
		stats := h.Stats()
		series := h.Series()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Stats  Stats        `json:"stats"`
				Series []SeriesInfo `json:"series"`
			}{stats, series})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "metrics history: %d series, %d scrapes, interval %s, retention %s\n",
			stats.Series, stats.Scrapes, stats.Interval, stats.Retention)
		if !stats.LastScrape.IsZero() {
			fmt.Fprintf(w, "last scrape: %s\n", stats.LastScrape.Format(time.RFC3339))
		}
		fmt.Fprintf(w, "\n%-9s  %7s  %s\n", "TYPE", "SAMPLES", "SERIES")
		for _, si := range series {
			fmt.Fprintf(w, "%-9s  %7d  %s\n", si.Type, si.Samples, si.Key)
		}
		fmt.Fprintf(w, "\nper-series data: /api/history/{family}?label=k=v&window=5m&n=100\n")
	})
}

// APIHandler serves windowed series data under /api/history/. The
// path segment after the prefix names the metric family; repeated
// ?label=key=value parameters narrow the match; ?window= computes
// window aggregates (rate / gauge stats / histogram quantiles)
// alongside the samples; ?n= caps returned samples per series
// (default 500, 0 = samples omitted). A nil history answers 404.
func APIHandler(h *History, prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h == nil {
			http.Error(w, "metrics history disabled (-history-scrape 0)", http.StatusNotFound)
			return
		}
		family := strings.TrimPrefix(r.URL.Path, prefix)
		family = strings.Trim(family, "/")
		if family == "" {
			// No family: list what exists, grouped.
			writeFamilyIndex(w, h)
			return
		}
		q := r.URL.Query()
		sel, err := buildSelector(family, q["label"])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := defaultSampleCap
		if v := q.Get("n"); v != "" {
			iv, err := strconv.Atoi(v)
			if err != nil || iv < 0 {
				http.Error(w, "bad n: want non-negative integer", http.StatusBadRequest)
				return
			}
			n = iv
		}
		var window time.Duration
		if v := q.Get("window"); v != "" {
			window, err = time.ParseDuration(v)
			if err != nil || window <= 0 {
				http.Error(w, "bad window: want positive Go duration (e.g. 5m)", http.StatusBadRequest)
				return
			}
		}

		type seriesOut struct {
			SeriesInfo
			Samples []Sample `json:"data,omitempty"`
		}
		resp := struct {
			Family string         `json:"family"`
			Window string         `json:"window,omitempty"`
			Agg    map[string]any `json:"aggregates,omitempty"`
			Series []seriesOut    `json:"series"`
		}{Family: family}

		matched := 0
		var typ string
		for _, si := range h.Series() {
			if !sel(si.Name, labelsOf(h, si.Key)) {
				continue
			}
			matched++
			typ = si.Type
			so := seriesOut{SeriesInfo: si}
			if n > 0 {
				_, samples, _ := h.Samples(si.Key, n)
				so.Samples = samples
			}
			resp.Series = append(resp.Series, so)
		}
		if matched == 0 {
			http.Error(w, fmt.Sprintf("no series match family %q", family), http.StatusNotFound)
			return
		}
		if window > 0 {
			resp.Window = window.String()
			resp.Agg = windowAggregates(h, sel, typ, window)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// buildSelector parses repeated label=key=value params into a
// Selector over the family.
func buildSelector(family string, labelParams []string) (Selector, error) {
	sel := Family(family)
	for _, lp := range labelParams {
		k, v, ok := strings.Cut(lp, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad label %q: want key=value", lp)
		}
		inner := sel
		sel = func(name string, labels []obs.Label) bool {
			if !inner(name, labels) {
				return false
			}
			for _, l := range labels {
				if l.Key == k && l.Value == v {
					return true
				}
			}
			return false
		}
	}
	return sel, nil
}

// labelsOf re-resolves a series' labels from its key via Samples
// metadata (cheap: metadata only, no copy of the ring).
func labelsOf(h *History, key string) []obs.Label {
	info, _, ok := h.Samples(key, -1)
	if !ok {
		return nil
	}
	return info.Labels
}

// windowAggregates computes the type-appropriate summary for the
// selection over the trailing window. Values are JSON-safe (no NaN).
func windowAggregates(h *History, sel Selector, typ string, window time.Duration) map[string]any {
	agg := map[string]any{}
	switch typ {
	case "counter":
		sum, ok := h.CounterSum(sel, window)
		agg["present"] = ok
		agg["sum"] = sum
		if rate, ok := h.Rate(sel, window); ok {
			agg["rate_per_sec"] = round6(rate)
		}
	case "gauge":
		gs, ok := h.GaugeWindow(sel, window)
		agg["present"] = ok
		if ok {
			agg["min"] = gs.Min
			agg["max"] = gs.Max
			agg["avg"] = round6(gs.Avg)
			agg["last"] = gs.Last
			agg["samples"] = gs.Samples
		}
	case "histogram":
		d, ok := h.HistogramWindow(sel, window)
		agg["present"] = ok
		if ok {
			agg["count"] = d.Count
			agg["sum"] = round6(d.Sum)
			qs := map[string]any{}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if v, ok := d.Quantile(q); ok {
					qs[fmt.Sprintf("p%g", q*100)] = round6(v)
				}
			}
			if len(qs) > 0 {
				agg["quantiles"] = qs
			}
		}
	}
	return agg
}

func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}

// writeFamilyIndex lists the tracked families with series counts.
func writeFamilyIndex(w http.ResponseWriter, h *History) {
	counts := map[string]int{}
	types := map[string]string{}
	for _, si := range h.Series() {
		counts[si.Name]++
		types[si.Name] = si.Type
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	type fam struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series int    `json:"series"`
	}
	out := make([]fam, 0, len(names))
	for _, n := range names {
		out = append(out, fam{n, types[n], counts[n]})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Families []fam `json:"families"`
	}{out})
}
