// Package history turns the point-in-time metrics Registry into
// queryable time series: a fixed-interval scraper samples every
// registered series into a per-series ring buffer — counters stored
// as deltas between scrapes, gauges as points, histograms as
// cumulative bucket snapshots — so the process can answer "what was
// the error rate over the last five minutes" and "what was the p99
// over the last hour" with no external collector. The SLO engine
// (internal/slo) evaluates its burn-rate rules against these windows;
// operators read the same data at /api/history/{series} and
// /debug/history.
//
// Memory is strictly bounded: Retention/Interval samples per series,
// and a sample is 16 bytes for counters/gauges plus the bucket
// snapshot for histograms. The defaults (10s interval, 6h retention)
// hold 2160 samples per series — about 34 KiB for a 15-bucket latency
// histogram, two orders of magnitude below one open quarter snapshot.
package history

import (
	"context"
	"sync"
	"time"

	"maras/internal/obs"
)

// Defaults for Options.
const (
	DefaultInterval  = 10 * time.Second
	DefaultRetention = 6 * time.Hour
)

// Options configures New. Every field is optional.
type Options struct {
	// Interval is the scrape period (<= 0 = DefaultInterval).
	Interval time.Duration
	// Retention is how far back windows can reach (<= 0 =
	// DefaultRetention; clamped up to cover at least two intervals).
	Retention time.Duration
	// Now stubs the clock in tests; defaults to time.Now.
	Now func() time.Time
}

// Sample is one scrape of one series.
type Sample struct {
	T time.Time `json:"t"`
	// Value carries the counter delta since the previous scrape, or
	// the gauge level. Zero for histograms.
	Value float64 `json:"v"`
	// Histogram snapshot: cumulative counts aligned with the series
	// bounds, total count (including +Inf), and sum.
	Cum   []int64 `json:"cum,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
}

// series is one ring of samples. The History mutex guards all fields.
type series struct {
	name   string
	typ    string
	labels []obs.Label
	bounds []float64 // histogram bucket upper bounds

	ring []Sample
	next int
	full bool

	prevRaw float64 // last cumulative counter value, for deltas
	seeded  bool    // first scrape seen (baseline recorded)
}

// History scrapes a Registry on a fixed interval into bounded
// per-series rings. A nil *History is safe: queries report no data
// and Scrape/Start are no-ops, so call sites wire it unconditionally.
type History struct {
	reg       *obs.Registry
	interval  time.Duration
	retention time.Duration
	slots     int
	now       func() time.Time

	mu         sync.Mutex
	series     map[string]*series
	order      []string
	scrapes    uint64
	lastScrape time.Time
	onScrape   func(now time.Time)

	scrapesC *obs.Counter
	seriesG  *obs.Gauge
}

// New builds a History over reg. The scraper's own series
// (maras_history_scrapes_total, maras_history_series) register on the
// same registry, so the history layer observes itself.
func New(reg *obs.Registry, opts Options) *History {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Retention <= 0 {
		opts.Retention = DefaultRetention
	}
	if opts.Retention < 2*opts.Interval {
		opts.Retention = 2 * opts.Interval
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &History{
		reg:       reg,
		interval:  opts.Interval,
		retention: opts.Retention,
		slots:     int(opts.Retention / opts.Interval),
		now:       opts.Now,
		series:    map[string]*series{},
		scrapesC: reg.Counter("maras_history_scrapes_total",
			"Completed scrapes of the metrics registry into the history rings."),
		seriesG: reg.Gauge("maras_history_series",
			"Series currently tracked by the metrics history."),
	}
}

// Interval returns the scrape period.
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// Retention returns how far back windows can reach.
func (h *History) Retention() time.Duration {
	if h == nil {
		return 0
	}
	return h.retention
}

// OnScrape registers fn to run after every completed scrape, on the
// scraper's goroutine — the SLO engine's evaluation tick hangs here
// so burn rates are recomputed exactly once per sample.
func (h *History) OnScrape(fn func(now time.Time)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onScrape = fn
	h.mu.Unlock()
}

// Start launches the scrape loop and returns; it stops when ctx ends.
// An immediate scrape runs first so counter baselines exist before
// the first interval elapses.
func (h *History) Start(ctx context.Context) {
	if h == nil {
		return
	}
	h.Scrape()
	go func() {
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				h.Scrape()
			}
		}
	}()
}

// Scrape samples every registry series once. Safe to call manually
// (tests, benches) even while the Start loop runs. A series seen for
// the first time records a zero counter delta — its pre-history count
// accrued over an unknown span and must not be attributed to one
// interval.
func (h *History) Scrape() {
	if h == nil {
		return
	}
	now := h.now()
	snaps := h.reg.Gather()
	h.mu.Lock()
	for _, sn := range snaps {
		key := obs.SeriesKey(sn.Name, sn.Labels)
		s := h.series[key]
		if s == nil {
			labels := make([]obs.Label, len(sn.Labels))
			copy(labels, sn.Labels)
			s = &series{
				name:   sn.Name,
				typ:    sn.Type,
				labels: labels,
				ring:   make([]Sample, 0, h.slots),
			}
			h.series[key] = s
			h.order = append(h.order, key)
		}
		smp := Sample{T: now}
		switch sn.Type {
		case "counter":
			if s.seeded {
				smp.Value = sn.Value - s.prevRaw
				if smp.Value < 0 {
					smp.Value = sn.Value // counter reset: count from zero
				}
			}
			s.prevRaw = sn.Value
		case "gauge":
			smp.Value = sn.Value
		case "histogram":
			if s.bounds == nil {
				s.bounds = sn.Bounds
			}
			smp.Cum = sn.Cumulative
			smp.Count = sn.Count
			smp.Sum = sn.Sum
		}
		s.seeded = true
		s.push(smp, h.slots)
	}
	h.scrapes++
	h.lastScrape = now
	h.seriesG.Set(int64(len(h.series)))
	fn := h.onScrape
	h.mu.Unlock()
	h.scrapesC.Inc()
	if fn != nil {
		fn(now)
	}
}

// push appends a sample under ring semantics.
func (s *series) push(smp Sample, slots int) {
	if len(s.ring) < slots {
		s.ring = append(s.ring, smp)
		return
	}
	s.ring[s.next] = smp
	s.next = (s.next + 1) % slots
	s.full = true
}

// ordered returns the ring oldest..newest.
func (s *series) ordered() []Sample {
	out := make([]Sample, 0, len(s.ring))
	if s.full {
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring...)
	}
	return out
}

// Stats summarizes scraper activity for /debug/history.
type Stats struct {
	Scrapes    uint64        `json:"scrapes"`
	Series     int           `json:"series"`
	Interval   time.Duration `json:"interval_ns"`
	Retention  time.Duration `json:"retention_ns"`
	LastScrape time.Time     `json:"last_scrape"`
}

// Stats returns totals since startup.
func (h *History) Stats() Stats {
	if h == nil {
		return Stats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Scrapes:    h.scrapes,
		Series:     len(h.series),
		Interval:   h.interval,
		Retention:  h.retention,
		LastScrape: h.lastScrape,
	}
}

// SeriesInfo describes one tracked series without its samples.
type SeriesInfo struct {
	Key     string      `json:"key"`
	Name    string      `json:"name"`
	Type    string      `json:"type"`
	Labels  []obs.Label `json:"labels,omitempty"`
	Samples int         `json:"samples"`
}

// Series lists every tracked series in first-seen order.
func (h *History) Series() []SeriesInfo {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SeriesInfo, 0, len(h.order))
	for _, key := range h.order {
		s := h.series[key]
		out = append(out, SeriesInfo{
			Key: key, Name: s.name, Type: s.typ,
			Labels: s.labels, Samples: len(s.ring),
		})
	}
	return out
}

// Samples returns up to n of one series' samples, oldest first
// (n <= 0 returns everything held), plus its metadata. ok is false
// for an unknown key.
func (h *History) Samples(key string, n int) (info SeriesInfo, samples []Sample, ok bool) {
	if h == nil {
		return SeriesInfo{}, nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[key]
	if s == nil {
		return SeriesInfo{}, nil, false
	}
	samples = s.ordered()
	if n > 0 && len(samples) > n {
		samples = samples[len(samples)-n:]
	}
	return SeriesInfo{
		Key: key, Name: s.name, Type: s.typ,
		Labels: s.labels, Samples: len(s.ring),
	}, samples, true
}

// Selector chooses series by family name and labels.
type Selector func(name string, labels []obs.Label) bool

// Family selects every series of the named family.
func Family(name string) Selector {
	return func(n string, _ []obs.Label) bool { return n == name }
}

// FamilyLabel selects the named family's series carrying label
// key=value.
func FamilyLabel(name, key, value string) Selector {
	return func(n string, labels []obs.Label) bool {
		if n != name {
			return false
		}
		for _, l := range labels {
			if l.Key == key && l.Value == value {
				return true
			}
		}
		return false
	}
}

// windowed returns a series' samples with T > cutoff, oldest first,
// plus the last sample at or before the cutoff (the window baseline
// for cumulative histogram snapshots; nil when the series is younger
// than the window).
func (s *series) windowed(cutoff time.Time) (in []Sample, baseline *Sample) {
	all := s.ordered()
	for i := range all {
		if all[i].T.After(cutoff) {
			if i > 0 {
				baseline = &all[i-1]
			}
			return all[i:], baseline
		}
	}
	if n := len(all); n > 0 {
		baseline = &all[n-1]
	}
	return nil, baseline
}

// CounterSum sums the deltas of every matching counter series over
// the trailing window. ok is false when no matching counter series
// exists (sum 0, no data) — a zero sum with ok=true means the series
// exist but nothing happened.
func (h *History) CounterSum(sel Selector, window time.Duration) (sum float64, ok bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cutoff := h.now().Add(-window)
	for _, key := range h.order {
		s := h.series[key]
		if s.typ != "counter" || !sel(s.name, s.labels) {
			continue
		}
		ok = true
		in, _ := s.windowed(cutoff)
		for _, smp := range in {
			sum += smp.Value
		}
	}
	return sum, ok
}

// Rate is CounterSum divided by the window — events per second.
func (h *History) Rate(sel Selector, window time.Duration) (perSec float64, ok bool) {
	sum, ok := h.CounterSum(sel, window)
	if !ok || window <= 0 {
		return 0, ok
	}
	return sum / window.Seconds(), true
}

// GaugeStats summarizes one gauge series over a window.
type GaugeStats struct {
	Min, Max, Avg, Last float64
	Samples             int
}

// GaugeWindow computes min/max/avg/last over the matching gauge
// series' samples in the trailing window (all matching series pooled).
// ok is false when no sample falls inside the window.
func (h *History) GaugeWindow(sel Selector, window time.Duration) (GaugeStats, bool) {
	if h == nil {
		return GaugeStats{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cutoff := h.now().Add(-window)
	var gs GaugeStats
	var sum float64
	var lastT time.Time
	for _, key := range h.order {
		s := h.series[key]
		if s.typ != "gauge" || !sel(s.name, s.labels) {
			continue
		}
		in, _ := s.windowed(cutoff)
		for _, smp := range in {
			if gs.Samples == 0 || smp.Value < gs.Min {
				gs.Min = smp.Value
			}
			if gs.Samples == 0 || smp.Value > gs.Max {
				gs.Max = smp.Value
			}
			if gs.Samples == 0 || smp.T.After(lastT) {
				gs.Last, lastT = smp.Value, smp.T
			}
			sum += smp.Value
			gs.Samples++
		}
	}
	if gs.Samples == 0 {
		return GaugeStats{}, false
	}
	gs.Avg = sum / float64(gs.Samples)
	return gs, true
}

// HistDelta is the windowed difference of cumulative histogram
// snapshots: what was observed during the window, in classic
// cumulative-bucket form.
type HistDelta struct {
	Bounds []float64
	Cum    []int64 // cumulative counts per bound, window-local
	Count  int64   // total observations in the window (incl. +Inf)
	Sum    float64
}

// Quantile interpolates the q-quantile of the window's observations.
func (d HistDelta) Quantile(q float64) (float64, bool) {
	return obs.BucketQuantile(q, d.Bounds, d.Cum, d.Count)
}

// FractionOver estimates the fraction of the window's observations
// above threshold.
func (d HistDelta) FractionOver(threshold float64) (float64, bool) {
	return obs.BucketFractionOver(threshold, d.Bounds, d.Cum, d.Count)
}

// HistogramWindow merges every matching histogram series and returns
// the bucket deltas accumulated during the trailing window. Series
// whose bucket bounds differ from the first match are skipped (the
// route histograms all share DefaultLatencyBuckets). ok is false when
// no matching series holds a sample.
func (h *History) HistogramWindow(sel Selector, window time.Duration) (HistDelta, bool) {
	if h == nil {
		return HistDelta{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cutoff := h.now().Add(-window)
	var d HistDelta
	found := false
	for _, key := range h.order {
		s := h.series[key]
		if s.typ != "histogram" || !sel(s.name, s.labels) {
			continue
		}
		in, baseline := s.windowed(cutoff)
		if len(in) == 0 {
			continue
		}
		latest := in[len(in)-1]
		if d.Bounds == nil {
			d.Bounds = s.bounds
			d.Cum = make([]int64, len(s.bounds))
		} else if !sameBounds(d.Bounds, s.bounds) {
			continue
		}
		var baseCum []int64
		var baseCount int64
		var baseSum float64
		if baseline != nil {
			baseCum, baseCount, baseSum = baseline.Cum, baseline.Count, baseline.Sum
		}
		for i := range d.Cum {
			var b int64
			if i < len(baseCum) {
				b = baseCum[i]
			}
			if i < len(latest.Cum) {
				d.Cum[i] += latest.Cum[i] - b
			}
		}
		d.Count += latest.Count - baseCount
		d.Sum += latest.Sum - baseSum
		found = true
	}
	return d, found
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
