package history

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maras/internal/obs"
)

// fakeClock steps time manually so windows are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestHistory(t *testing.T, interval, retention time.Duration) (*obs.Registry, *History, *fakeClock) {
	t.Helper()
	reg := obs.NewRegistry()
	clock := newFakeClock()
	h := New(reg, Options{Interval: interval, Retention: retention, Now: clock.Now})
	return reg, h, clock
}

func TestCounterDeltasAndBaseline(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	c := reg.Counter("reqs_total", "h", obs.Label{Key: "code", Value: "2xx"})
	c.Add(100) // pre-history count: must NOT be attributed to one interval

	h.Scrape()
	clock.Advance(time.Second)
	c.Add(7)
	h.Scrape()
	clock.Advance(time.Second)
	c.Add(3)
	h.Scrape()

	sum, ok := h.CounterSum(Family("reqs_total"), 10*time.Second)
	if !ok {
		t.Fatal("CounterSum found no counter series")
	}
	if sum != 10 {
		t.Errorf("window sum = %v, want 10 (the 100 pre-history counts must be excluded)", sum)
	}
	rate, ok := h.Rate(Family("reqs_total"), 10*time.Second)
	if !ok || math.Abs(rate-1.0) > 1e-9 {
		t.Errorf("rate = %v ok=%v, want 1.0/s", rate, ok)
	}
}

func TestCounterSumRespectsWindow(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	c := reg.Counter("evts_total", "h")
	h.Scrape()
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		c.Inc()
		h.Scrape()
	}
	// Only the last 3 seconds of deltas fall inside a 3s window.
	sum, ok := h.CounterSum(Family("evts_total"), 3*time.Second)
	if !ok || sum != 3 {
		t.Errorf("3s sum = %v ok=%v, want 3", sum, ok)
	}
	sum, _ = h.CounterSum(Family("evts_total"), time.Hour)
	if sum != 10 {
		t.Errorf("full-window sum = %v, want 10", sum)
	}
	if _, ok := h.CounterSum(Family("missing_total"), time.Hour); ok {
		t.Error("unknown family reported ok=true")
	}
}

func TestFamilyLabelSelector(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	ok2 := reg.Counter("reqs_total", "h", obs.Label{Key: "code", Value: "2xx"})
	bad := reg.Counter("reqs_total", "h", obs.Label{Key: "code", Value: "5xx"})
	h.Scrape()
	clock.Advance(time.Second)
	ok2.Add(90)
	bad.Add(10)
	h.Scrape()

	sum, ok := h.CounterSum(FamilyLabel("reqs_total", "code", "5xx"), 10*time.Second)
	if !ok || sum != 10 {
		t.Errorf("5xx sum = %v ok=%v, want 10", sum, ok)
	}
	sum, _ = h.CounterSum(Family("reqs_total"), 10*time.Second)
	if sum != 100 {
		t.Errorf("family sum = %v, want 100", sum)
	}
}

func TestGaugeWindowStats(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	g := reg.Gauge("inflight", "h")
	for _, v := range []int64{2, 8, 4} {
		g.Set(v)
		h.Scrape()
		clock.Advance(time.Second)
	}
	gs, ok := h.GaugeWindow(Family("inflight"), time.Minute)
	if !ok {
		t.Fatal("no gauge samples in window")
	}
	if gs.Min != 2 || gs.Max != 8 || gs.Last != 4 || gs.Samples != 3 {
		t.Errorf("stats = %+v", gs)
	}
	if math.Abs(gs.Avg-14.0/3) > 1e-9 {
		t.Errorf("avg = %v, want %v", gs.Avg, 14.0/3)
	}
}

func TestHistogramWindowDeltasAndQuantile(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	hist := reg.Histogram("lat_seconds", "h", []float64{1, 2, 4})

	// First batch lands before the window of interest.
	for i := 0; i < 50; i++ {
		hist.Observe(0.5)
	}
	h.Scrape()
	clock.Advance(10 * time.Second)

	// Second batch: 10 per bucket.
	for i := 0; i < 10; i++ {
		hist.Observe(0.5)
		hist.Observe(1.5)
		hist.Observe(3)
		hist.Observe(9)
	}
	h.Scrape()

	d, ok := h.HistogramWindow(Family("lat_seconds"), 5*time.Second)
	if !ok {
		t.Fatal("no histogram data in window")
	}
	if d.Count != 40 {
		t.Errorf("window count = %d, want 40 (first batch excluded)", d.Count)
	}
	if d.Cum[0] != 10 || d.Cum[1] != 20 || d.Cum[2] != 30 {
		t.Errorf("window cum = %v, want [10 20 30]", d.Cum)
	}
	q, ok := d.Quantile(0.5)
	if !ok || math.Abs(q-2.0) > 1e-9 {
		t.Errorf("p50 = %v ok=%v, want 2", q, ok)
	}
	frac, ok := d.FractionOver(4)
	if !ok || math.Abs(frac-0.25) > 1e-9 {
		t.Errorf("FractionOver(4) = %v ok=%v, want 0.25", frac, ok)
	}

	// A window spanning everything sees both batches.
	d, _ = h.HistogramWindow(Family("lat_seconds"), time.Hour)
	if d.Count != 90 {
		t.Errorf("full-window count = %d, want 90", d.Count)
	}
}

func TestRingBoundedByRetention(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, 3*time.Second)
	reg.Gauge("g", "h").Set(1)
	for i := 0; i < 10; i++ {
		h.Scrape()
		clock.Advance(time.Second)
	}
	_, samples, ok := h.Samples(obs.SeriesKey("g", nil), -0)
	if !ok {
		t.Fatal("series not found")
	}
	if len(samples) != 3 {
		t.Errorf("ring holds %d samples, want 3 (retention/interval)", len(samples))
	}
	// Oldest-first ordering survives the wrap.
	for i := 1; i < len(samples); i++ {
		if !samples[i].T.After(samples[i-1].T) {
			t.Errorf("samples out of order: %v then %v", samples[i-1].T, samples[i].T)
		}
	}
}

func TestScrapeSelfMetrics(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	h.Scrape()
	clock.Advance(time.Second)
	h.Scrape()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "maras_history_scrapes_total 2") {
		t.Errorf("exposition missing scrape counter:\n%s", out)
	}
	if !strings.Contains(out, "maras_history_series") {
		t.Errorf("exposition missing series gauge:\n%s", out)
	}
	st := h.Stats()
	if st.Scrapes != 2 || st.Series == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOnScrapeRunsPerScrape(t *testing.T) {
	_, h, clock := newTestHistory(t, time.Second, time.Minute)
	var ticks []time.Time
	h.OnScrape(func(now time.Time) { ticks = append(ticks, now) })
	h.Scrape()
	clock.Advance(time.Second)
	h.Scrape()
	if len(ticks) != 2 {
		t.Fatalf("OnScrape ran %d times, want 2", len(ticks))
	}
	if !ticks[1].After(ticks[0]) {
		t.Error("tick times not advancing")
	}
}

func TestNilHistorySafe(t *testing.T) {
	var h *History
	h.Scrape()
	h.Start(nil) //nolint — nil context fine for the nil receiver no-op
	if _, ok := h.CounterSum(Family("x"), time.Minute); ok {
		t.Error("nil history reported data")
	}
	if _, ok := h.HistogramWindow(Family("x"), time.Minute); ok {
		t.Error("nil history reported histogram data")
	}
	if h.Series() != nil || h.Stats().Scrapes != 0 {
		t.Error("nil history reported series")
	}
	rec := httptest.NewRecorder()
	Handler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/history", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil Handler status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	APIHandler(h, "/api/history/").ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/history/x", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil APIHandler status = %d, want 404", rec.Code)
	}
}

func TestDebugHandlerFormats(t *testing.T) {
	reg, h, _ := newTestHistory(t, time.Second, time.Minute)
	reg.Counter("reqs_total", "h").Inc()
	h.Scrape()

	rec := httptest.NewRecorder()
	Handler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/history", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("text status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "reqs_total") {
		t.Errorf("text body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	Handler(h).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/history?format=json", nil))
	var body struct {
		Stats  Stats        `json:"stats"`
		Series []SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Stats.Scrapes != 1 || len(body.Series) == 0 {
		t.Errorf("json body = %+v", body)
	}
}

func TestAPIHandlerSeriesAndAggregates(t *testing.T) {
	reg, h, clock := newTestHistory(t, time.Second, time.Minute)
	c2 := reg.Counter("reqs_total", "h", obs.Label{Key: "code", Value: "2xx"})
	c5 := reg.Counter("reqs_total", "h", obs.Label{Key: "code", Value: "5xx"})
	h.Scrape()
	clock.Advance(time.Second)
	c2.Add(9)
	c5.Add(1)
	h.Scrape()

	api := APIHandler(h, "/api/history/")

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/api/history/reqs_total?window=10s&label=code=5xx", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		Family string         `json:"family"`
		Agg    map[string]any `json:"aggregates"`
		Series []struct {
			Key  string `json:"key"`
			Data []struct {
				V float64 `json:"v"`
			} `json:"data"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Series) != 1 {
		t.Fatalf("label filter matched %d series, want 1", len(body.Series))
	}
	if sum, _ := body.Agg["sum"].(float64); sum != 1 {
		t.Errorf("aggregate sum = %v, want 1", body.Agg["sum"])
	}

	// Unknown family answers 404; bad params answer 400.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/history/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown family status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/history/reqs_total?window=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad window status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/history/reqs_total?label=nokey", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad label status = %d, want 400", rec.Code)
	}

	// The bare prefix lists families.
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/history/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "reqs_total") {
		t.Errorf("family index status = %d body:\n%s", rec.Code, rec.Body.String())
	}
}
