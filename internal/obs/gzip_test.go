package obs

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func gzipProbe(t *testing.T, h http.Handler, acceptEncoding string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestGzipHandlerCompressesWhenAccepted(t *testing.T) {
	body := strings.Repeat("metrics exposition text\n", 100)
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, body)
	}))

	rec := gzipProbe(t, h, "gzip")
	if got := rec.Header().Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	if got := rec.Header().Get("Vary"); !strings.Contains(got, "Accept-Encoding") {
		t.Errorf("Vary = %q, want Accept-Encoding", got)
	}
	if rec.Body.Len() >= len(body) {
		t.Errorf("compressed body (%d bytes) not smaller than plain (%d)", rec.Body.Len(), len(body))
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != body {
		t.Error("round-tripped body differs from original")
	}
}

func TestGzipHandlerIdentityWithoutAccept(t *testing.T) {
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "plain")
	}))
	for _, ae := range []string{"", "identity", "br", "gzip;q=0", "gzip;q=0.0"} {
		rec := gzipProbe(t, h, ae)
		if enc := rec.Header().Get("Content-Encoding"); enc != "" {
			t.Errorf("Accept-Encoding %q: Content-Encoding = %q, want none", ae, enc)
		}
		if rec.Body.String() != "plain" {
			t.Errorf("Accept-Encoding %q: body = %q", ae, rec.Body.String())
		}
	}
}

func TestGzipHandlerAcceptVariants(t *testing.T) {
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	for _, ae := range []string{"gzip", "gzip, deflate", "deflate, gzip;q=0.5", "GZIP", "gzip;q=1.0"} {
		rec := gzipProbe(t, h, ae)
		if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
			t.Errorf("Accept-Encoding %q: Content-Encoding = %q, want gzip", ae, enc)
		}
	}
}

func TestGzipHandlerSkipsNoBodyStatuses(t *testing.T) {
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := gzipProbe(t, h, "gzip")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("status = %d, want 204", rec.Code)
	}
	if enc := rec.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("204 got Content-Encoding %q", enc)
	}
}

func TestGzipHandlerRespectsPreEncoded(t *testing.T) {
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Encoding", "br")
		io.WriteString(w, "already-encoded")
	}))
	rec := gzipProbe(t, h, "gzip")
	if enc := rec.Header().Get("Content-Encoding"); enc != "br" {
		t.Errorf("Content-Encoding = %q, want br preserved", enc)
	}
	if rec.Body.String() != "already-encoded" {
		t.Error("pre-encoded body was recompressed")
	}
}

func TestGzipHandlerDropsContentLength(t *testing.T) {
	h := GzipHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "5")
		io.WriteString(w, "hello")
	}))
	rec := gzipProbe(t, h, "gzip")
	if cl := rec.Header().Get("Content-Length"); cl != "" {
		t.Errorf("Content-Length = %q survived compression", cl)
	}
}
