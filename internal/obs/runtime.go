package obs

import (
	"log/slog"
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime health sampling: a goroutine reads runtime/metrics on an
// interval into registry gauges/histograms, and a watchdog logs and
// counts when GC pause or goroutine count crosses configured limits.
// Where /metrics scrapes are pull-driven and only as fresh as the
// scraper, the sampler gives the process its own heartbeat — BENCH
// artifacts and slow-trace investigations get runtime context even
// with no collector attached.

// Runtime metric names, with fallbacks for toolchain renames (the GC
// pause histogram moved under /sched/pauses in go1.22; the old name
// remains as a deprecated alias).
var (
	gcPauseMetrics   = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}
	schedLatMetric   = "/sched/latencies:seconds"
	goroutinesMetric = "/sched/goroutines:goroutines"
	heapMetric       = "/memory/classes/heap/objects:bytes"
	gcCyclesMetric   = "/gc/cycles/total:gc-cycles"
)

// RuntimePauseBuckets are histogram bounds (seconds) suited to GC
// pauses and scheduler latencies — much finer than request latencies.
var RuntimePauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.5,
}

// RuntimeStats is one sample of process health. Pause and latency
// maxima are measured since the previous sample (since process start
// for the first sample or a one-shot read).
type RuntimeStats struct {
	Goroutines      int64         `json:"goroutines"`
	HeapBytes       int64         `json:"heap_bytes"`
	GCCycles        int64         `json:"gc_cycles"`
	MaxGCPause      time.Duration `json:"max_gc_pause_ns"`
	MaxSchedLatency time.Duration `json:"max_sched_latency_ns"`
}

// RuntimeSamplerOptions configures the sampler and its watchdog.
type RuntimeSamplerOptions struct {
	// Interval between samples; 0 means DefaultSampleInterval.
	Interval time.Duration
	// MaxGoroutines trips the watchdog when the goroutine count
	// exceeds it; 0 disables the check.
	MaxGoroutines int64
	// MaxGCPause trips the watchdog when a GC pause since the last
	// sample exceeds it; 0 disables the check.
	MaxGCPause time.Duration
	// Logger receives watchdog warnings; nil disables logging (trips
	// are still counted).
	Logger *slog.Logger
	// OnViolation, when non-nil, receives edge-triggered watchdog
	// events: exactly one when a check crosses into violation and one
	// when it recovers, regardless of how many samples the excursion
	// spans. It is invoked synchronously from the sampling goroutine
	// with the sampler lock held, so it must be fast and must not call
	// back into the sampler. Used to route watchdog excursions into
	// the audit event log without obs importing audit.
	OnViolation func(WatchdogEvent)
}

// WatchdogEvent describes one edge of a watchdog excursion: Entering
// reports the transition direction, Value the observed quantity
// (goroutine count, or pause seconds for gc_pause), Limit the
// configured ceiling.
type WatchdogEvent struct {
	Check    string  `json:"check"`
	Entering bool    `json:"entering"`
	Value    float64 `json:"value"`
	Limit    float64 `json:"limit"`
}

// DefaultSampleInterval is the sampling cadence when
// RuntimeSamplerOptions.Interval is zero.
const DefaultSampleInterval = 10 * time.Second

// RuntimeSampler periodically samples runtime health into a metrics
// registry. Construct with NewRuntimeSampler, then Start/Stop.
type RuntimeSampler struct {
	opts   RuntimeSamplerOptions
	logger *slog.Logger

	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPause    *Histogram
	schedLat   *Histogram
	trips      map[string]*Counter

	mu        sync.Mutex // guards sample state (loop vs SampleOnce in tests)
	samples   []metrics.Sample
	pauseIdx  int // index of the GC pause histogram sample, -1 if absent
	schedIdx  int
	prevPause *metrics.Float64Histogram
	prevSched *metrics.Float64Histogram
	over      map[string]bool // watchdog state for edge-triggered logging

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// watchdog check names (the "check" label on the trip counter).
const (
	WatchdogGoroutines = "goroutines"
	WatchdogGCPause    = "gc_pause"
)

// NewRuntimeSampler registers the runtime series on reg and returns a
// sampler ready to Start. reg must be non-nil.
func NewRuntimeSampler(reg *Registry, opts RuntimeSamplerOptions) *RuntimeSampler {
	if opts.Interval <= 0 {
		opts.Interval = DefaultSampleInterval
	}
	s := &RuntimeSampler{
		opts:   opts,
		logger: opts.Logger,
		goroutines: reg.Gauge("maras_runtime_goroutines",
			"Goroutine count at the last runtime sample."),
		heapBytes: reg.Gauge("maras_runtime_heap_bytes",
			"Live heap object bytes at the last runtime sample."),
		gcCycles: reg.Gauge("maras_runtime_gc_cycles",
			"Completed GC cycles at the last runtime sample."),
		gcPause: reg.Histogram("maras_runtime_gc_pause_max_seconds",
			"Max GC pause observed between consecutive runtime samples.", RuntimePauseBuckets),
		schedLat: reg.Histogram("maras_runtime_sched_latency_max_seconds",
			"Max scheduler latency observed between consecutive runtime samples.", RuntimePauseBuckets),
		trips: map[string]*Counter{
			WatchdogGoroutines: reg.Counter("maras_watchdog_trips_total",
				"Runtime watchdog limit violations, by check.", Label{"check", WatchdogGoroutines}),
			WatchdogGCPause: reg.Counter("maras_watchdog_trips_total",
				"Runtime watchdog limit violations, by check.", Label{"check", WatchdogGCPause}),
		},
		over: map[string]bool{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// Resolve which metric names this toolchain supports.
	s.pauseIdx, s.schedIdx = -1, -1
	available := map[string]bool{}
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	add := func(name string) int {
		s.samples = append(s.samples, metrics.Sample{Name: name})
		return len(s.samples) - 1
	}
	add(goroutinesMetric)
	add(heapMetric)
	add(gcCyclesMetric)
	for _, name := range gcPauseMetrics {
		if available[name] {
			s.pauseIdx = add(name)
			break
		}
	}
	if available[schedLatMetric] {
		s.schedIdx = add(schedLatMetric)
	}
	return s
}

// Start launches the sampling goroutine. Calling Start twice is safe.
func (s *RuntimeSampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			ticker := time.NewTicker(s.opts.Interval)
			defer ticker.Stop()
			s.SampleOnce() // establish the pause baselines immediately
			for {
				select {
				case <-ticker.C:
					s.SampleOnce()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to
// call multiple times, and before Start.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
}

// SampleOnce reads the runtime, updates the registry series, runs the
// watchdog, and returns the sample. It is what the loop calls every
// tick, exposed for tests and one-shot consumers (maras-bench).
func (s *RuntimeSampler) SampleOnce() RuntimeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	var st RuntimeStats
	if v := s.samples[0].Value; v.Kind() == metrics.KindUint64 {
		st.Goroutines = int64(v.Uint64())
	}
	if v := s.samples[1].Value; v.Kind() == metrics.KindUint64 {
		st.HeapBytes = int64(v.Uint64())
	}
	if v := s.samples[2].Value; v.Kind() == metrics.KindUint64 {
		st.GCCycles = int64(v.Uint64())
	}
	if s.pauseIdx >= 0 {
		if v := s.samples[s.pauseIdx].Value; v.Kind() == metrics.KindFloat64Histogram {
			cur := v.Float64Histogram()
			st.MaxGCPause = histMaxDelta(s.prevPause, cur)
			s.prevPause = cloneHist(cur)
		}
	}
	if s.schedIdx >= 0 {
		if v := s.samples[s.schedIdx].Value; v.Kind() == metrics.KindFloat64Histogram {
			cur := v.Float64Histogram()
			st.MaxSchedLatency = histMaxDelta(s.prevSched, cur)
			s.prevSched = cloneHist(cur)
		}
	}

	s.goroutines.Set(st.Goroutines)
	s.heapBytes.Set(st.HeapBytes)
	s.gcCycles.Set(st.GCCycles)
	s.gcPause.Observe(st.MaxGCPause.Seconds())
	s.schedLat.Observe(st.MaxSchedLatency.Seconds())

	if s.opts.MaxGoroutines > 0 {
		s.check(WatchdogGoroutines, st.Goroutines > s.opts.MaxGoroutines,
			float64(st.Goroutines), float64(s.opts.MaxGoroutines),
			slog.Int64("goroutines", st.Goroutines),
			slog.Int64("limit", s.opts.MaxGoroutines))
	}
	if s.opts.MaxGCPause > 0 {
		s.check(WatchdogGCPause, st.MaxGCPause > s.opts.MaxGCPause,
			st.MaxGCPause.Seconds(), s.opts.MaxGCPause.Seconds(),
			slog.Duration("max_gc_pause", st.MaxGCPause),
			slog.Duration("limit", s.opts.MaxGCPause))
	}
	return st
}

// check counts every violating sample, but logs and fires OnViolation
// only on the transition into violation (edge-triggered, so a
// sustained breach is one warning and one event, not one per tick)
// plus the recovery.
func (s *RuntimeSampler) check(name string, violated bool, value, limit float64, attrs ...any) {
	was := s.over[name]
	s.over[name] = violated
	if violated {
		s.trips[name].Inc()
		if !was {
			if s.logger != nil {
				s.logger.Warn("runtime watchdog limit exceeded",
					append([]any{slog.String("check", name)}, attrs...)...)
			}
			if s.opts.OnViolation != nil {
				s.opts.OnViolation(WatchdogEvent{Check: name, Entering: true, Value: value, Limit: limit})
			}
		}
	} else if was {
		if s.logger != nil {
			s.logger.Info("runtime watchdog recovered", slog.String("check", name))
		}
		if s.opts.OnViolation != nil {
			s.opts.OnViolation(WatchdogEvent{Check: name, Entering: false, Value: value, Limit: limit})
		}
	}
}

// histMaxDelta returns the upper bound of the highest histogram
// bucket whose count grew since prev (prev nil = since process
// start). A +Inf upper bound falls back to the bucket's lower bound.
func histMaxDelta(prev, cur *metrics.Float64Histogram) time.Duration {
	if cur == nil {
		return 0
	}
	var maxSec float64
	for i := len(cur.Counts) - 1; i >= 0; i-- {
		var before uint64
		if prev != nil && len(prev.Counts) == len(cur.Counts) {
			before = prev.Counts[i]
		}
		if cur.Counts[i] > before {
			upper := cur.Buckets[i+1]
			if math.IsInf(upper, 1) || math.IsNaN(upper) {
				upper = cur.Buckets[i]
			}
			maxSec = upper
			break
		}
	}
	return time.Duration(maxSec * float64(time.Second))
}

// cloneHist copies a runtime histogram so the next Read can reuse the
// sample buffers without aliasing our baseline.
func cloneHist(h *metrics.Float64Histogram) *metrics.Float64Histogram {
	if h == nil {
		return nil
	}
	cp := &metrics.Float64Histogram{
		Counts:  make([]uint64, len(h.Counts)),
		Buckets: make([]float64, len(h.Buckets)),
	}
	copy(cp.Counts, h.Counts)
	copy(cp.Buckets, h.Buckets)
	return cp
}

// ReadRuntimeStats is a one-shot convenience: a fresh sampler over a
// throwaway registry, sampled once. Pause/latency maxima cover the
// whole process lifetime so far.
func ReadRuntimeStats() RuntimeStats {
	return NewRuntimeSampler(NewRegistry(), RuntimeSamplerOptions{}).SampleOnce()
}
