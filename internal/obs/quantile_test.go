package obs

import (
	"math"
	"testing"
)

// The shared fixture: bounds 1/2/4 with 10 observations per finite
// bucket and 10 more in +Inf (total 40).
var (
	qBounds = []float64{1, 2, 4}
	qCum    = []int64{10, 20, 30}
	qTotal  = int64(40)
)

func TestBucketQuantileInterpolates(t *testing.T) {
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 1.0}, // rank 10: exactly fills bucket 1 → its bound
		{0.125, 0.5},
		{0.5, 2.0},
		{0.625, 3.0}, // rank 25: halfway through the (2,4] bucket
		{0.75, 4.0},
		{0.99, 4.0}, // +Inf bucket clamps to the last finite bound
	}
	for _, c := range cases {
		got, ok := BucketQuantile(c.q, qBounds, qCum, qTotal)
		if !ok {
			t.Fatalf("q=%v: ok=false", c.q)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBucketQuantileRejectsBadInput(t *testing.T) {
	if _, ok := BucketQuantile(0.5, qBounds, qCum, 0); ok {
		t.Error("zero total should not produce a quantile")
	}
	if _, ok := BucketQuantile(0, qBounds, qCum, qTotal); ok {
		t.Error("q=0 should be rejected")
	}
	if _, ok := BucketQuantile(1.5, qBounds, qCum, qTotal); ok {
		t.Error("q>1 should be rejected")
	}
	if _, ok := BucketQuantile(0.5, nil, nil, qTotal); ok {
		t.Error("no buckets should not produce a quantile")
	}
	if _, ok := BucketQuantile(0.5, qBounds, qCum[:2], qTotal); ok {
		t.Error("mismatched cum length should be rejected")
	}
}

func TestBucketQuantileTrailingEmptyBucket(t *testing.T) {
	// Everything landed in the first bucket; quantiles interpolate
	// inside it and never reach the empty (1,2] bucket.
	got, ok := BucketQuantile(0.5, []float64{1, 2}, []int64{10, 10}, 10)
	if !ok || math.Abs(got-0.5) > 1e-9 {
		t.Errorf("got %v ok=%v, want 0.5 true", got, ok)
	}
	got, ok = BucketQuantile(1, []float64{1, 2}, []int64{10, 10}, 10)
	if !ok || math.Abs(got-1) > 1e-9 {
		t.Errorf("q=1: got %v ok=%v, want 1 true", got, ok)
	}
}

func TestBucketFractionOver(t *testing.T) {
	cases := []struct {
		threshold float64
		want      float64
	}{
		{0.5, 0.875}, // half of bucket 1 under
		{1, 0.75},    // exactly the first bound
		{1.5, 0.625}, // halfway through (1,2]
		{3, 0.375},   // halfway through (2,4]
		{4, 0.25},    // at the last bound: exactly the +Inf share
		{100, 0.25},  // beyond it: still the +Inf share
		{-1, 1},      // negative threshold: everything is over
	}
	for _, c := range cases {
		got, ok := BucketFractionOver(c.threshold, qBounds, qCum, qTotal)
		if !ok {
			t.Fatalf("threshold=%v: ok=false", c.threshold)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("threshold=%v: got %v, want %v", c.threshold, got, c.want)
		}
	}
	if _, ok := BucketFractionOver(1, qBounds, qCum, 0); ok {
		t.Error("zero total should not produce a fraction")
	}
}
