package obs

import (
	"strings"
	"testing"
)

func TestFloatGaugeSetAndRender(t *testing.T) {
	reg := NewRegistry()
	fg := reg.FloatGauge("maras_burn_rate", "Burn multiple.", Label{"objective", "avail"})
	fg.Set(14.4)
	if got := fg.Value(); got != 14.4 {
		t.Fatalf("Value = %v, want 14.4", got)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `maras_burn_rate{objective="avail"} 14.4`) {
		t.Errorf("rendering missing float gauge line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE maras_burn_rate gauge") {
		t.Errorf("float gauge family not typed gauge:\n%s", out)
	}
	fg.Set(-0.25)
	if got := fg.Value(); got != -0.25 {
		t.Errorf("negative Value = %v, want -0.25", got)
	}
}

func TestFloatGaugeSameSeriesReturned(t *testing.T) {
	reg := NewRegistry()
	a := reg.FloatGauge("fg", "h")
	b := reg.FloatGauge("fg", "h")
	if a != b {
		t.Error("same name+labels should return the same FloatGauge")
	}
}

func TestSeriesKeyStable(t *testing.T) {
	k1 := SeriesKey("http_requests_total", []Label{{"route", "/"}, {"code", "2xx"}})
	k2 := SeriesKey("http_requests_total", []Label{{"route", "/"}, {"code", "2xx"}})
	if k1 != k2 {
		t.Errorf("same series produced different keys: %q vs %q", k1, k2)
	}
	k3 := SeriesKey("http_requests_total", []Label{{"route", "/"}, {"code", "5xx"}})
	if k1 == k3 {
		t.Error("different label values produced the same key")
	}
	if k := SeriesKey("plain", nil); k != "plain" {
		t.Errorf("unlabeled key = %q, want %q", k, "plain")
	}
}

func TestGatherTypedSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "h", Label{"code", "2xx"})
	c.Add(7)
	g := reg.Gauge("inflight", "h")
	g.Set(3)
	fg := reg.FloatGauge("burn", "h")
	fg.Set(1.5)
	h := reg.Histogram("lat_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	byKey := map[string]SeriesSnapshot{}
	for _, sn := range reg.Gather() {
		byKey[SeriesKey(sn.Name, sn.Labels)] = sn
	}
	cs := byKey[SeriesKey("reqs_total", []Label{{"code", "2xx"}})]
	if cs.Type != "counter" || cs.Value != 7 {
		t.Errorf("counter snapshot = %+v", cs)
	}
	gs := byKey["inflight"]
	if gs.Type != "gauge" || gs.Value != 3 {
		t.Errorf("gauge snapshot = %+v", gs)
	}
	fs := byKey["burn"]
	if fs.Type != "gauge" || fs.Value != 1.5 {
		t.Errorf("float gauge snapshot = %+v", fs)
	}
	hs := byKey["lat_seconds"]
	if hs.Type != "histogram" || hs.Count != 3 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if len(hs.Bounds) != 2 || len(hs.Cumulative) != 2 {
		t.Fatalf("histogram snapshot buckets = %+v", hs)
	}
	if hs.Cumulative[0] != 1 || hs.Cumulative[1] != 2 {
		t.Errorf("cumulative = %v, want [1 2]", hs.Cumulative)
	}
	if hs.Sum != 11 {
		t.Errorf("sum = %v, want 11", hs.Sum)
	}
}
