package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"time"
)

// Request-scoped span tracing. Where the stage Tracer answers "what
// did one pipeline run spend per stage", spans answer the serving
// question: for this one request, where did the time go — router,
// snapshot load, LRU miss, decode, render? A Span is carried through
// context.Context; completed requests assemble into a Trace that
// lands in the Journal (ring buffer, /debug/traces). The disabled
// path — a context with no active span — is allocation-free, so every
// layer threads StartSpan unconditionally, exactly like the nil
// *Tracer convention.

// activeSpanKey carries the in-flight *Span through a context.
type activeSpanKey struct{}

// SpanRecord is one completed span of a trace: its position in the
// span tree (Parent is the parent span ID, -1 for the root), when it
// started relative to the trace start, how long it ran, and its
// string attributes (cache=lru_hit, quarter=2014Q2, status=200, ...).
type SpanRecord struct {
	ID         int               `json:"id"`
	Parent     int               `json:"parent"`
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span wall time as a time.Duration.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Trace assembles the spans of one request (or one startup mining
// run). It is identified by the request ID and safe for concurrent
// span completion — handlers may fan work out.
type Trace struct {
	id    string
	start time.Time

	mu     sync.Mutex
	nextID int
	spans  []SpanRecord
}

// NewTrace starts an empty trace identified by id (normally the
// request ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Span is one in-flight operation inside a trace. A nil *Span no-ops
// on every method, so the disabled-tracing path costs nothing. A span
// is owned by the goroutine that started it; End hands the completed
// record to the trace under its lock.
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Time
	attrs  map[string]string
}

func (t *Trace) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	return &Span{tr: t, id: id, parent: parent, name: name, start: time.Now()}
}

// StartRoot opens the root span of the trace and returns a context
// carrying it; child spans started from that context attach below it.
func (t *Trace) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	s := t.newSpan(name, -1)
	return context.WithValue(ctx, activeSpanKey{}, s), s
}

// StartSpan starts a child of the active span in ctx and returns a
// derived context carrying the child. When ctx has no active span
// (tracing disabled, or a background call path), it returns ctx
// unchanged and a nil span — zero allocations, benchmark-guarded.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(activeSpanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id)
	return context.WithValue(ctx, activeSpanKey{}, s), s
}

// TraceID returns the ID of the trace this span belongs to — the
// handle callers use to link derived records (wide events) back to the
// journal. A nil span (tracing disabled) returns "".
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// SetAttr records a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// SetInt records an integer attribute on the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// End completes the span and appends its record to the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.tr
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		StartNS:    s.start.Sub(t.start).Nanoseconds(),
		DurationNS: int64(dur),
		Attrs:      s.attrs,
	})
	t.mu.Unlock()
}

// ActiveSpan returns the in-flight span carried by ctx, or nil.
func ActiveSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(activeSpanKey{}).(*Span)
	return s
}

// addCompleted appends an already-finished span (used when bridging
// stage-tracer records, which carry durations but were not started
// through StartSpan).
func (t *Trace) addCompleted(parent int, name string, start time.Time, dur time.Duration, attrs map[string]string) {
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.spans = append(t.spans, SpanRecord{
		ID:         id,
		Parent:     parent,
		Name:       name,
		StartNS:    start.Sub(t.start).Nanoseconds(),
		DurationNS: int64(dur),
		Attrs:      attrs,
	})
	t.mu.Unlock()
}

// AttachStageRecords bridges a pipeline stage trace into the active
// span of ctx: each StageRecord becomes a completed child span named
// "stage:<name>" carrying the stage's allocation volume and domain
// counters as attributes. The stages ran back-to-back, so their spans
// are laid out end-aligned at the current time. A ctx without an
// active span is a no-op, so callers bridge unconditionally.
func AttachStageRecords(ctx context.Context, recs []StageRecord) {
	parent := ActiveSpan(ctx)
	if parent == nil || len(recs) == 0 {
		return
	}
	var total time.Duration
	for _, r := range recs {
		total += r.Duration()
	}
	start := time.Now().Add(-total)
	for _, r := range recs {
		attrs := make(map[string]string, len(r.Counters)+1)
		attrs["alloc_bytes"] = strconv.FormatUint(r.AllocBytes, 10)
		for k, v := range r.Counters {
			attrs[k] = strconv.FormatInt(v, 10)
		}
		parent.tr.addCompleted(parent.id, "stage:"+r.Name, start, r.Duration(), attrs)
		start = start.Add(r.Duration())
	}
}

// TraceRecord is a completed, immutable view of a trace as stored in
// the journal: identity, the root span's name and wall time, and the
// full span set.
type TraceRecord struct {
	ID         string       `json:"id"`
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Slow       bool         `json:"slow,omitempty"`
	Spans      []SpanRecord `json:"spans"`
}

// Duration returns the trace wall time (the root span's duration).
func (r TraceRecord) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Snapshot finalizes the trace into a journal-ready record. Call it
// after ending the root span; spans still in flight are simply absent
// from the record.
func (t *Trace) Snapshot() TraceRecord {
	t.mu.Lock()
	spans := make([]SpanRecord, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	rec := TraceRecord{ID: t.id, Start: t.start, Spans: spans}
	for _, s := range spans {
		if s.Parent == -1 {
			rec.Name = s.Name
			rec.DurationNS = s.DurationNS
		}
	}
	if rec.DurationNS == 0 {
		// No completed root (snapshot taken early): span extent.
		for _, s := range spans {
			if end := s.StartNS + s.DurationNS; end > rec.DurationNS {
				rec.DurationNS = end
			}
		}
	}
	return rec
}

// RequestIDHeader is the inbound/outbound request-ID header the HTTP
// middleware honors, generates, and echoes.
const RequestIDHeader = "X-Request-ID"

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// a time-derived ID rather than serving an empty one.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether an inbound X-Request-ID is safe to
// echo into headers and logs: 1..128 printable ASCII characters with
// no spaces or quotes.
func ValidRequestID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}
