package prof

import (
	"sync"
	"testing"
	"time"
)

// testCaptor builds a captor with millisecond CPU windows so capture
// cycles finish fast.
func testCaptor(t *testing.T) *Captor {
	t.Helper()
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewCaptor(CaptorOptions{
		Store:         s,
		CPUWindow:     time.Millisecond,
		TriggerWindow: time.Millisecond,
	})
}

// countByCause tallies retained artifacts per cause, one capture cycle
// producing several kinds.
func countByCause(s *Store, cause, kind string) int {
	n := 0
	for _, a := range s.List() {
		if a.Cause == cause && a.Kind == kind {
			n++
		}
	}
	return n
}

// fakeClock is a mutable time source for cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestTriggerDedupDuringSustainedBurn(t *testing.T) {
	captor := testCaptor(t)
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewTrigger(TriggerOptions{
		Captor:   captor,
		Cooldown: time.Minute,
		Now:      clock.Now,
	})

	// A sustained SLO burn records a violation on every engine tick;
	// only the first within the cooldown window may capture.
	for i := 0; i < 10; i++ {
		tr.Observe("slo_burn", "fail", "api_signal", "burn 14.2x")
		clock.Advance(time.Second)
	}
	tr.Wait()
	if got := countByCause(captor.Store(), "slo_burn", "cpu"); got != 1 {
		t.Fatalf("sustained burn should capture once per cooldown, got %d cpu artifacts", got)
	}

	// Past the cooldown the same cause fires again.
	clock.Advance(time.Minute)
	tr.Observe("slo_burn", "fail", "api_signal", "still burning")
	tr.Wait()
	if got := countByCause(captor.Store(), "slo_burn", "cpu"); got != 2 {
		t.Fatalf("post-cooldown burn should capture again, got %d cpu artifacts", got)
	}

	// The triggered artifacts carry the linked event.
	found := false
	for _, a := range captor.Store().List() {
		if a.Cause == "slo_burn" && a.Event != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("triggered artifacts should carry the linked audit event")
	}
}

func TestTriggerCooldownIsPerCause(t *testing.T) {
	captor := testCaptor(t)
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewTrigger(TriggerOptions{Captor: captor, Cooldown: time.Minute, Now: clock.Now})

	tr.Observe("slo_burn", "fail", "api_signal", "burn")
	tr.Observe("watchdog_rss", "warn", "process", "rss over budget")
	tr.SlowTrace("mine_quarter", 3*time.Second)
	tr.Wait()

	s := captor.Store()
	for _, cause := range []string{"slo_burn", "watchdog_rss", CauseSlowTrace} {
		if got := countByCause(s, cause, "cpu"); got != 1 {
			t.Fatalf("cause %s: want 1 capture, got %d", cause, got)
		}
	}
}

func TestTriggerIgnoresUnrelatedEvents(t *testing.T) {
	captor := testCaptor(t)
	tr := NewTrigger(TriggerOptions{Captor: captor, Cooldown: time.Minute})

	tr.Observe("slo_burn", "info", "api_signal", "below threshold") // wrong severity
	tr.Observe("quality_gate", "fail", "2015Q1", "support floor")   // wrong rule
	tr.Observe("", "fail", "", "")                                  // empty rule
	tr.Wait()

	if got := len(captor.Store().List()); got != 0 {
		t.Fatalf("unrelated events must not capture, got %d artifacts", got)
	}
}
