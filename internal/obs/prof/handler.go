package prof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Handler serves the profiling surface under prefix (conventionally
// "/debug/profiles"):
//
//	GET {prefix}        index: captor + store state, the artifact
//	                    table, and live in-process summaries, as
//	                    aligned text or JSON (?format=json)
//	GET {prefix}/{id}   raw artifact download, CRC-verified
//
// A nil captor (profiling disabled) serves 404 with a hint, so the
// route can be mounted unconditionally.
func Handler(c *Captor, prefix string) http.Handler {
	prefix = strings.TrimSuffix(prefix, "/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if c == nil {
			http.Error(w, "profiling disabled; start the server with -prof-dir", http.StatusNotFound)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		rest = strings.Trim(rest, "/")
		if rest == "" {
			serveIndex(w, r, c)
			return
		}
		serveArtifact(w, r, c, rest)
	})
}

// indexPayload is the JSON shape of the profiles index.
type indexPayload struct {
	Captor    CaptorStats      `json:"captor"`
	Store     StoreStats       `json:"store"`
	Artifacts []Artifact       `json:"artifacts"` // oldest..newest
	Live      []ProfileSummary `json:"live"`
}

func serveIndex(w http.ResponseWriter, r *http.Request, c *Captor) {
	payload := indexPayload{
		Captor:    c.Stats(),
		Store:     c.Store().Stats(),
		Artifacts: c.Store().List(),
		Live:      Summarize(10),
	}
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(payload)
		return
	}

	var b strings.Builder
	b.WriteString("# maras continuous profiling\n\n")
	fmt.Fprintf(&b, "captures: %d cycles", payload.Captor.Cycles)
	if !payload.Captor.LastCapture.IsZero() {
		fmt.Fprintf(&b, ", last %s", payload.Captor.LastCapture.Format("2006-01-02T15:04:05Z07:00"))
	}
	if payload.Captor.LastError != "" {
		fmt.Fprintf(&b, ", last error: %s", payload.Captor.LastError)
	}
	fmt.Fprintf(&b, "\nwindows: cpu %.0fms scheduled / %.0fms triggered, interval %.0fs\n",
		payload.Captor.CPUWindowMS, payload.Captor.TriggerWinMS, payload.Captor.IntervalMS/1000)
	fmt.Fprintf(&b, "mutex fraction: %d, block rate: %.1fms\n",
		payload.Captor.MutexFraction, payload.Captor.BlockRateMS)
	fmt.Fprintf(&b, "store: %d artifacts / %s (caps %d / %s), %d evicted, dir %s\n\n",
		payload.Store.Artifacts, fmtBytes(payload.Store.Bytes),
		payload.Store.MaxArtifacts, fmtBytes(payload.Store.MaxBytes),
		payload.Store.Evicted, payload.Store.Dir)

	b.WriteString("## artifacts (oldest first; GET /debug/profiles/{id})\n")
	if len(payload.Artifacts) == 0 {
		b.WriteString("  (none yet)\n")
	}
	for _, a := range payload.Artifacts {
		fmt.Fprintf(&b, "  %-22s %-10s %10s  %-14s %s",
			a.ID, a.Kind, fmtBytes(a.Bytes), a.Cause,
			a.TakenAt.Format("15:04:05"))
		if a.Note != "" {
			fmt.Fprintf(&b, "  %s", a.Note)
		}
		if a.Event != "" {
			fmt.Fprintf(&b, "  [%s]", a.Event)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	RenderText(&b, payload.Live)

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(b.String()))
}

func serveArtifact(w http.ResponseWriter, r *http.Request, c *Captor, id string) {
	data, a, err := c.Store().Read(id)
	if err != nil {
		if _, ok := c.Store().Get(id); !ok {
			http.Error(w, "no such artifact", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", a.ID+ArtifactExt))
	w.Header().Set("Content-Length", fmt.Sprintf("%d", len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data)
}
