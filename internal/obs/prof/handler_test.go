package prof

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerNilCaptor(t *testing.T) {
	h := Handler(nil, "/debug/profiles")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "-prof-dir") {
		t.Fatalf("nil captor: %d %q", rec.Code, rec.Body.String())
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	h := Handler(testCaptor(t), "/debug/profiles")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/profiles", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: %d", rec.Code)
	}
}

func TestHandlerIndexAndArtifact(t *testing.T) {
	captor := testCaptor(t)
	arts, err := captor.CaptureCycle(context.Background(), "slo_burn", "slo_burn api: burn 12x")
	if err != nil {
		t.Fatal(err)
	}
	h := Handler(captor, "/debug/profiles")

	// Text index lists the artifacts and live summaries.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 200 {
		t.Fatalf("index: %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "maras continuous profiling") ||
		!strings.Contains(body, arts[0].ID) ||
		!strings.Contains(body, "slo_burn") {
		t.Fatalf("index body missing content:\n%s", body)
	}

	// JSON index decodes and carries the same artifacts.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles?format=json", nil))
	var payload struct {
		Captor    CaptorStats `json:"captor"`
		Artifacts []Artifact  `json:"artifacts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("json index: %v", err)
	}
	if payload.Captor.Cycles != 1 || len(payload.Artifacts) != len(arts) {
		t.Fatalf("json payload: %+v", payload)
	}

	// Raw artifact download matches the stored bytes.
	want, _, err := captor.Store().Read(arts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/"+arts[0].ID, nil))
	if rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("artifact download: %d, %d bytes", rec.Code, rec.Body.Len())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type: %q", ct)
	}

	// HEAD reports length without a body; unknown IDs 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/debug/profiles/"+arts[0].ID, nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD: %d, %d bytes", rec.Code, rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/999999-cpu", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown artifact: %d", rec.Code)
	}
}
