package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// CPULabelStats aggregates the sample weight carried by each pprof
// label key (and key=value pair) in a CPU profile. Weight is the
// first sample value — for CPU profiles, the sample count — so
// ByKey["stage"] / TotalWeight is the fraction of CPU time spent
// under any stage= label.
type CPULabelStats struct {
	// TotalWeight is the summed weight of every sample, labeled or
	// not.
	TotalWeight int64
	// ByKey sums sample weight per label key. A sample with two label
	// keys counts toward both; a sample counts at most once per key.
	ByKey map[string]int64
	// ByKeyValue sums sample weight per key=value pair.
	ByKeyValue map[string]map[string]int64
}

// Fraction returns the share of total weight carried by key, in
// [0, 1].
func (s CPULabelStats) Fraction(key string) float64 {
	if s.TotalWeight == 0 {
		return 0
	}
	return float64(s.ByKey[key]) / float64(s.TotalWeight)
}

// ParseCPULabels extracts per-label sample weights from a pprof
// protobuf profile (gzipped or raw), walking just enough of the wire
// format to reach Sample.label — the full profile.proto model (and
// its protoc dependency) is overkill for one aggregation. Fields
// touched: Profile.sample (2), Profile.string_table (6),
// Sample.value (2), Sample.label (3), Label.key (1), Label.str (2).
func ParseCPULabels(data []byte) (CPULabelStats, error) {
	stats := CPULabelStats{
		ByKey:      map[string]int64{},
		ByKeyValue: map[string]map[string]int64{},
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return stats, fmt.Errorf("prof: gunzip profile: %w", err)
		}
		data, err = io.ReadAll(zr)
		zr.Close()
		if err != nil {
			return stats, fmt.Errorf("prof: gunzip profile: %w", err)
		}
	}

	// Pass 1: the string table must be complete before labels can be
	// resolved, and the proto spec does not order fields, so collect
	// raw sample messages and strings in one walk.
	var strTable []string
	var samples [][]byte
	d := &protoDecoder{buf: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return stats, err
		}
		switch {
		case field == 6 && wire == wireBytes: // string_table
			s, err := d.bytes()
			if err != nil {
				return stats, err
			}
			strTable = append(strTable, string(s))
		case field == 2 && wire == wireBytes: // sample
			s, err := d.bytes()
			if err != nil {
				return stats, err
			}
			samples = append(samples, s)
		default:
			if err := d.skip(wire); err != nil {
				return stats, err
			}
		}
	}

	str := func(idx int64) string {
		if idx < 0 || idx >= int64(len(strTable)) {
			return ""
		}
		return strTable[idx]
	}

	for _, raw := range samples {
		weight, labels, err := parseSample(raw)
		if err != nil {
			return stats, err
		}
		stats.TotalWeight += weight
		seen := map[string]bool{}
		for _, l := range labels {
			key := str(l.key)
			if key == "" || seen[key] {
				continue
			}
			seen[key] = true
			stats.ByKey[key] += weight
			val := str(l.str)
			m := stats.ByKeyValue[key]
			if m == nil {
				m = map[string]int64{}
				stats.ByKeyValue[key] = m
			}
			m[val] += weight
		}
	}
	return stats, nil
}

// sampleLabel holds string-table indices for one Sample.label entry.
type sampleLabel struct {
	key int64
	str int64
}

// parseSample extracts the first value and the labels from one Sample
// message.
func parseSample(raw []byte) (weight int64, labels []sampleLabel, err error) {
	d := &protoDecoder{buf: raw}
	haveValue := false
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case field == 2 && wire == wireVarint: // value, unpacked
			v, err := d.varint()
			if err != nil {
				return 0, nil, err
			}
			if !haveValue {
				weight = int64(v)
				haveValue = true
			}
		case field == 2 && wire == wireBytes: // value, packed
			packed, err := d.bytes()
			if err != nil {
				return 0, nil, err
			}
			pd := &protoDecoder{buf: packed}
			for !pd.done() {
				v, err := pd.varint()
				if err != nil {
					return 0, nil, err
				}
				if !haveValue {
					weight = int64(v)
					haveValue = true
				}
			}
		case field == 3 && wire == wireBytes: // label
			lraw, err := d.bytes()
			if err != nil {
				return 0, nil, err
			}
			l, err := parseLabel(lraw)
			if err != nil {
				return 0, nil, err
			}
			labels = append(labels, l)
		default:
			if err := d.skip(wire); err != nil {
				return 0, nil, err
			}
		}
	}
	if !haveValue {
		weight = 1
	}
	return weight, labels, nil
}

// parseLabel extracts key and str indices from one Label message.
func parseLabel(raw []byte) (sampleLabel, error) {
	var l sampleLabel
	d := &protoDecoder{buf: raw}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return l, err
		}
		switch {
		case field == 1 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return l, err
			}
			l.key = int64(v)
		case field == 2 && wire == wireVarint:
			v, err := d.varint()
			if err != nil {
				return l, err
			}
			l.str = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// protoDecoder is a minimal protobuf wire-format cursor.
type protoDecoder struct {
	buf []byte
	pos int
}

func (d *protoDecoder) done() bool { return d.pos >= len(d.buf) }

func (d *protoDecoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("prof: varint overflow")
		}
	}
}

func (d *protoDecoder) tag() (field int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *protoDecoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("prof: truncated bytes field")
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

func (d *protoDecoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if len(d.buf)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64")
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wireFixed32:
		if len(d.buf)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32")
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}
