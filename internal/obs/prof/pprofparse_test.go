package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"math"
	"runtime/pprof"
	"testing"
	"time"
)

// Minimal pprof protobuf encoder for deterministic parser tests.

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field)<<3|uint64(wire))
}

func appendBytesField(b []byte, field int, data []byte) []byte {
	b = appendTag(b, field, wireBytes)
	b = appendVarint(b, uint64(len(data)))
	return append(b, data...)
}

func appendVarintField(b []byte, field int, v uint64) []byte {
	b = appendTag(b, field, wireVarint)
	return appendVarint(b, v)
}

// encLabel builds a Label message {key, str} of string-table indices.
func encLabel(key, str int) []byte {
	var b []byte
	b = appendVarintField(b, 1, uint64(key))
	b = appendVarintField(b, 2, uint64(str))
	return b
}

// encSample builds a Sample message with packed values and labels.
func encSample(values []int64, packed bool, labels ...[]byte) []byte {
	var b []byte
	if packed {
		var pv []byte
		for _, v := range values {
			pv = appendVarint(pv, uint64(v))
		}
		b = appendBytesField(b, 2, pv)
	} else {
		for _, v := range values {
			b = appendVarintField(b, 2, uint64(v))
		}
	}
	for _, l := range labels {
		b = appendBytesField(b, 3, l)
	}
	return b
}

// encProfile builds a Profile message from a string table and samples.
func encProfile(strs []string, samples ...[]byte) []byte {
	var b []byte
	for _, s := range samples {
		b = appendBytesField(b, 2, s)
	}
	for _, s := range strs {
		b = appendBytesField(b, 6, []byte(s))
	}
	return b
}

func TestParseCPULabelsSynthetic(t *testing.T) {
	// String table: 0="", 1="stage", 2="mine", 3="route", 4="/api".
	strs := []string{"", "stage", "mine", "route", "/api"}
	profile := encProfile(strs,
		encSample([]int64{8, 80_000_000}, false, encLabel(1, 2)), // stage=mine, weight 8
		encSample([]int64{2, 20_000_000}, true),                  // unlabeled, packed values
		encSample([]int64{5}, false, encLabel(3, 4)),             // route=/api
	)

	stats, err := ParseCPULabels(profile)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalWeight != 15 {
		t.Fatalf("total weight = %d, want 15", stats.TotalWeight)
	}
	if stats.ByKey["stage"] != 8 || stats.ByKey["route"] != 5 {
		t.Fatalf("by key: %+v", stats.ByKey)
	}
	if got := stats.Fraction("stage"); math.Abs(got-8.0/15.0) > 1e-9 {
		t.Fatalf("stage fraction = %f", got)
	}
	if stats.ByKeyValue["stage"]["mine"] != 8 || stats.ByKeyValue["route"]["/api"] != 5 {
		t.Fatalf("by key/value: %+v", stats.ByKeyValue)
	}
}

func TestParseCPULabelsDedupPerSampleKey(t *testing.T) {
	strs := []string{"", "stage", "mine", "clean"}
	// One sample carrying two labels with the SAME key must count the
	// key's weight once, not twice.
	profile := encProfile(strs,
		encSample([]int64{4}, false, encLabel(1, 2), encLabel(1, 3)),
	)
	stats, err := ParseCPULabels(profile)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ByKey["stage"] != 4 {
		t.Fatalf("same-key labels double counted: %+v", stats.ByKey)
	}
}

func TestParseCPULabelsGzipped(t *testing.T) {
	strs := []string{"", "stage", "encode"}
	profile := encProfile(strs, encSample([]int64{3}, false, encLabel(1, 2)))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(profile)
	zw.Close()

	stats, err := ParseCPULabels(gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalWeight != 3 || stats.ByKey["stage"] != 3 {
		t.Fatalf("gzipped parse: %+v", stats)
	}
}

func TestParseCPULabelsTruncated(t *testing.T) {
	strs := []string{"", "stage", "mine"}
	profile := encProfile(strs, encSample([]int64{8}, false, encLabel(1, 2)))
	if _, err := ParseCPULabels(profile[:len(profile)-3]); err == nil {
		t.Fatal("truncated profile should error")
	}
}

// TestParseCPULabelsLiveProfile round-trips a real runtime profile:
// spin under a stage label, record, and confirm the parser attributes
// the samples. Sampling is environment dependent, so an unlucky empty
// profile retries and finally skips rather than flaking.
func TestParseCPULabelsLiveProfile(t *testing.T) {
	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Skipf("cpu profile unavailable: %v", err)
		}
		stop := time.Now().Add(250 * time.Millisecond)
		DoStage(context.Background(), "spin", func() {
			x := 0.0
			for time.Now().Before(stop) {
				for i := 0; i < 10_000; i++ {
					x += math.Sqrt(float64(i))
				}
			}
			_ = x
		})
		pprof.StopCPUProfile()

		stats, err := ParseCPULabels(buf.Bytes())
		if err != nil {
			t.Fatalf("live profile failed to parse: %v", err)
		}
		if stats.TotalWeight == 0 {
			continue // no samples landed; retry
		}
		if stats.ByKey[LabelStage] == 0 {
			t.Fatalf("no stage-labeled samples in live profile: %+v", stats.ByKey)
		}
		return
	}
	t.Skip("no CPU samples after 3 attempts; sampler starved in this environment")
}
