package prof

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// SummaryRow is one aggregated entry of an in-process profile
// summary: a call site (leaf-ward frames) and its weight.
type SummaryRow struct {
	Site    string  `json:"site"`             // "pkg.Func (file.go:123)"
	Value   int64   `json:"value"`            // bytes, goroutines, or cycle-derived ns
	Count   int64   `json:"count"`            // objects, goroutines, or contention events
	Percent float64 `json:"percent"`          // share of the profile total
	Detail  string  `json:"detail,omitempty"` // human units for Value
}

// ProfileSummary is one profile's in-process top-N, built straight
// from runtime records — no protobuf round trip, so it reflects the
// live process at the instant of the request rather than the last
// capture artifact.
type ProfileSummary struct {
	Name    string       `json:"name"`
	Enabled bool         `json:"enabled"`
	Total   int64        `json:"total"`
	Unit    string       `json:"unit"`
	Rows    []SummaryRow `json:"rows"`
	Note    string       `json:"note,omitempty"`
}

// Summarize builds live in-process summaries of the heap, goroutine,
// mutex, and block profiles, keeping the top n rows of each.
func Summarize(n int) []ProfileSummary {
	if n <= 0 {
		n = 10
	}
	return []ProfileSummary{
		summarizeHeap(n),
		summarizeGoroutines(n),
		summarizeContention("mutex", n),
		summarizeContention("block", n),
	}
}

// siteKey renders the most useful frame of a record's stack: the
// innermost non-runtime caller, with file:line.
func siteKey(stk []uintptr) string {
	frames := runtime.CallersFrames(stk)
	var fallback string
	for {
		f, more := frames.Next()
		if f.Function == "" {
			if !more {
				break
			}
			continue
		}
		if fallback == "" {
			fallback = f.Function
		}
		if !strings.HasPrefix(f.Function, "runtime.") && !strings.HasPrefix(f.Function, "runtime/") {
			short := f.File
			if i := strings.LastIndexByte(short, '/'); i >= 0 {
				short = short[i+1:]
			}
			return fmt.Sprintf("%s (%s:%d)", f.Function, short, f.Line)
		}
		if !more {
			break
		}
	}
	if fallback == "" {
		return "(unknown)"
	}
	return fallback
}

// aggregate folds per-record (value, count) pairs by site and returns
// the top n with percents of the total value.
type siteAgg struct {
	value int64
	count int64
}

func topRows(bySite map[string]siteAgg, n int, detail func(int64) string) (rows []SummaryRow, total int64) {
	for _, agg := range bySite {
		total += agg.value
	}
	rows = make([]SummaryRow, 0, len(bySite))
	for site, agg := range bySite {
		r := SummaryRow{Site: site, Value: agg.value, Count: agg.count}
		if total > 0 {
			r.Percent = 100 * float64(agg.value) / float64(total)
		}
		if detail != nil {
			r.Detail = detail(agg.value)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Site < rows[j].Site
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows, total
}

func summarizeHeap(n int) ProfileSummary {
	cnt, _ := runtime.MemProfile(nil, false)
	recs := make([]runtime.MemProfileRecord, cnt+64)
	cnt, ok := runtime.MemProfile(recs, false)
	if !ok {
		recs = make([]runtime.MemProfileRecord, cnt+128)
		cnt, ok = runtime.MemProfile(recs, false)
	}
	s := ProfileSummary{Name: "heap", Enabled: true, Unit: "bytes"}
	if !ok {
		s.Note = "profile growing too fast to snapshot"
		return s
	}
	bySite := map[string]siteAgg{}
	for _, r := range recs[:cnt] {
		if r.InUseBytes() == 0 {
			continue
		}
		k := siteKey(r.Stack())
		agg := bySite[k]
		agg.value += r.InUseBytes()
		agg.count += r.InUseObjects()
		bySite[k] = agg
	}
	s.Rows, s.Total = topRows(bySite, n, fmtBytes)
	return s
}

func summarizeGoroutines(n int) ProfileSummary {
	cnt := runtime.NumGoroutine()
	recs := make([]runtime.StackRecord, cnt+32)
	cnt, ok := runtime.GoroutineProfile(recs)
	if !ok {
		recs = make([]runtime.StackRecord, cnt+64)
		cnt, ok = runtime.GoroutineProfile(recs)
	}
	s := ProfileSummary{Name: "goroutine", Enabled: true, Unit: "goroutines"}
	if !ok {
		s.Note = "goroutine count changing too fast to snapshot"
		return s
	}
	bySite := map[string]siteAgg{}
	for _, r := range recs[:cnt] {
		k := siteKey(r.Stack())
		agg := bySite[k]
		agg.value++
		agg.count++
		bySite[k] = agg
	}
	s.Rows, s.Total = topRows(bySite, n, nil)
	return s
}

// summarizeContention handles the mutex and block profiles, which
// share runtime.BlockProfileRecord. The runtime does not export its
// cycles-per-second conversion, so rows report raw cycles and the
// percent share does the comparative work.
func summarizeContention(name string, n int) ProfileSummary {
	var fetch func([]runtime.BlockProfileRecord) (int, bool)
	s := ProfileSummary{Name: name, Unit: "cycles"}
	switch name {
	case "mutex":
		fetch = runtime.MutexProfile
		s.Enabled = MutexProfileFraction() > 0
		if !s.Enabled {
			s.Note = "disabled; set -mutex-profile-fraction"
		}
	case "block":
		fetch = runtime.BlockProfile
		s.Enabled = BlockProfileRate() > 0
		if !s.Enabled {
			s.Note = "disabled; set -block-profile-rate"
		}
	default:
		s.Note = "unknown profile"
		return s
	}
	cnt, _ := fetch(nil)
	recs := make([]runtime.BlockProfileRecord, cnt+32)
	cnt, ok := fetch(recs)
	if !ok {
		recs = make([]runtime.BlockProfileRecord, cnt+64)
		cnt, ok = fetch(recs)
	}
	if !ok {
		s.Note = "profile growing too fast to snapshot"
		return s
	}
	bySite := map[string]siteAgg{}
	for _, r := range recs[:cnt] {
		if r.Cycles == 0 {
			continue
		}
		k := siteKey(r.Stack())
		agg := bySite[k]
		agg.value += r.Cycles
		agg.count += r.Count
		bySite[k] = agg
	}
	s.Rows, s.Total = topRows(bySite, n, nil)
	return s
}

// RenderText writes the summaries as an aligned text report.
func RenderText(b *strings.Builder, sums []ProfileSummary) {
	for _, s := range sums {
		fmt.Fprintf(b, "## %s", s.Name)
		if !s.Enabled {
			fmt.Fprintf(b, " (disabled)")
		}
		if s.Note != "" {
			fmt.Fprintf(b, " — %s", s.Note)
		}
		fmt.Fprintf(b, "\n")
		for _, r := range s.Rows {
			val := fmt.Sprintf("%d", r.Value)
			if r.Detail != "" {
				val = r.Detail
			}
			fmt.Fprintf(b, "  %5.1f%%  %12s  n=%-8d %s\n", r.Percent, val, r.Count, r.Site)
		}
		if len(s.Rows) == 0 {
			fmt.Fprintf(b, "  (no samples)\n")
		}
		fmt.Fprintf(b, "\n")
	}
}
