package prof

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"maras/internal/obs"
)

// DefaultCooldown is the per-cause minimum gap between triggered
// captures. A sustained SLO burn records a violation on every tick;
// one snapshot per cooldown window captures the incident without
// turning the profiler into the incident.
const DefaultCooldown = 2 * time.Minute

// CauseSlowTrace tags captures triggered by the trace journal's
// slow-trace threshold.
const CauseSlowTrace = "slow_trace"

// TriggerOptions configures NewTrigger.
type TriggerOptions struct {
	// Captor performs the captures. Required.
	Captor *Captor
	// Cooldown is the per-cause dedup window (<= 0 = DefaultCooldown).
	Cooldown time.Duration
	// Metrics exports maras_prof_trigger_* series.
	Metrics *obs.Registry
	// Logger reports trigger decisions.
	Logger *slog.Logger
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Trigger converts anomaly signals into capture cycles: audit events
// (watchdog violations, SLO burns, slow watch evaluations) arrive via
// Observe, slow traces via SlowTrace. Each distinct cause gets at
// most one capture per cooldown window, and captures run on their own
// goroutine because audit subscribers execute synchronously on
// whatever goroutine recorded the event — a capture's CPU window must
// never stall an SLO tick.
//
// Trigger deliberately takes plain strings rather than audit.Event:
// internal/audit imports internal/core for quality reports, and core
// imports prof for stage labels, so prof depending on audit would be
// a cycle. The server adapts audit events with a one-line closure.
type Trigger struct {
	captor   *Captor
	cooldown time.Duration
	logger   *slog.Logger
	now      func() time.Time

	firedC      *obs.Counter // nil without metrics
	suppressedC *obs.Counter // nil without metrics

	mu          sync.Mutex
	lastByCause map[string]time.Time

	wg sync.WaitGroup
}

// NewTrigger builds a Trigger. opts.Captor must be non-nil.
func NewTrigger(opts TriggerOptions) *Trigger {
	if opts.Captor == nil {
		panic("prof: NewTrigger requires a Captor")
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	t := &Trigger{
		captor:      opts.Captor,
		cooldown:    opts.Cooldown,
		logger:      opts.Logger,
		now:         opts.Now,
		lastByCause: map[string]time.Time{},
	}
	if reg := opts.Metrics; reg != nil {
		t.firedC = reg.Counter("maras_prof_triggers_total",
			"Anomaly-triggered profile captures fired.")
		t.suppressedC = reg.Counter("maras_prof_triggers_suppressed_total",
			"Anomaly capture requests suppressed by the per-cause cooldown.")
	}
	return t
}

// Observe feeds one audit event (rule, severity, scope, message) to
// the trigger. Watchdog violations (rule prefix "watchdog_"), SLO
// burns ("slo_burn"), and slow watch evaluations ("watch_eval_slow")
// at warn or fail severity fire a capture; everything else is
// ignored.
func (t *Trigger) Observe(rule, severity, scope, message string) {
	if severity != "warn" && severity != "fail" {
		return
	}
	if rule != "slo_burn" && rule != "watch_eval_slow" && !strings.HasPrefix(rule, "watchdog_") {
		return
	}
	event := rule
	if scope != "" {
		event = rule + " " + scope
	}
	if message != "" {
		event += ": " + message
	}
	t.Fire(rule, event)
}

// SlowTrace feeds one slow trace (from obs.Journal's OnSlow hook) to
// the trigger.
func (t *Trigger) SlowTrace(name string, d time.Duration) {
	t.Fire(CauseSlowTrace, fmt.Sprintf("%s took %s", name, d.Round(time.Millisecond)))
}

// Fire requests a capture for cause, deduplicating per cause within
// the cooldown window. The capture itself runs asynchronously; Wait
// blocks until in-flight captures land (tests and the bench use it).
func (t *Trigger) Fire(cause, event string) {
	now := t.now()
	t.mu.Lock()
	if last, ok := t.lastByCause[cause]; ok && now.Sub(last) < t.cooldown {
		t.mu.Unlock()
		if t.suppressedC != nil {
			t.suppressedC.Inc()
		}
		return
	}
	t.lastByCause[cause] = now
	t.mu.Unlock()

	if t.firedC != nil {
		t.firedC.Inc()
	}
	t.log().Info("prof: anomaly capture triggered", "cause", cause, "event", event)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		if _, err := t.captor.CaptureCycle(context.Background(), cause, event); err != nil {
			t.log().Warn("prof: triggered capture failed", "cause", cause, "err", err)
		}
	}()
}

// Wait blocks until all in-flight triggered captures have finished.
func (t *Trigger) Wait() { t.wg.Wait() }

func (t *Trigger) log() *slog.Logger {
	if t.logger != nil {
		return t.logger
	}
	return slog.New(discardHandler{})
}
