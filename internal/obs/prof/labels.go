// Package prof is the continuous-profiling layer of the MARAS
// observability stack: pprof label attribution for the pipeline
// stages, store loads, watch evaluation, and HTTP routes (so CPU
// samples say *where* the cycles went, not just that they went), a
// capture scheduler that periodically records CPU windows and
// heap/goroutine/mutex/block snapshots into a bounded on-disk
// artifact ring with a CRC-indexed manifest, anomaly-triggered
// captures fed by the audit event log, and in-process profile
// summaries built straight from runtime records (no protobuf
// parsing) behind /debug/profiles. Standard library only
// (runtime/pprof, runtime, compress/gzip), like the rest of
// internal/obs.
package prof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"time"
)

// LabelStage is the pprof label key carried by pipeline-stage CPU
// samples (stage=fpgrowth, stage=mcac_build, ...).
const LabelStage = "stage"

// LabelOp is the pprof label key for non-pipeline hot paths: store
// snapshot decodes (op=store_load) and watchlist evaluation passes
// (op=watch_eval).
const LabelOp = "op"

// LabelRoute is the pprof label key HTTP requests carry (route=/q/).
const LabelRoute = "route"

// Do runs fn with the given pprof label pairs (key, value, key,
// value, ...) attached to the calling goroutine — and any goroutine
// it starts — for the duration of the call. CPU profile samples taken
// while fn runs carry the labels, which is how /debug/pprof/profile
// and the capture scheduler attribute cycles to stages and routes.
func Do(ctx context.Context, fn func(context.Context), kv ...string) {
	pprof.Do(ctx, pprof.Labels(kv...), fn)
}

// DoStage runs one pipeline stage under a stage=<name> label. The
// pipeline's stages neither take nor return through the context, so
// the inner context is dropped for the caller's convenience.
func DoStage(ctx context.Context, stage string, fn func()) {
	pprof.Do(ctx, pprof.Labels(LabelStage, stage), func(context.Context) { fn() })
}

// Mutex and block profiling are off by default in the Go runtime, so
// /debug/pprof/mutex and /debug/pprof/block serve empty profiles
// unless a rate is set. The setters below remember what they set —
// runtime exposes no getter for the block rate — so /debug/profiles
// can report whether the profiles are live or dormant.
var (
	mutexFraction int
	blockRateNS   int64
)

// EnableMutexProfiling samples 1/fraction of mutex contention events
// (runtime.SetMutexProfileFraction). fraction <= 0 disables.
func EnableMutexProfiling(fraction int) {
	if fraction < 0 {
		fraction = 0
	}
	mutexFraction = fraction
	runtime.SetMutexProfileFraction(fraction)
}

// EnableBlockProfiling records blocking events (channel waits, mutex
// waits) lasting at least rate (runtime.SetBlockProfileRate). rate
// <= 0 disables.
func EnableBlockProfiling(rate time.Duration) {
	if rate < 0 {
		rate = 0
	}
	blockRateNS = rate.Nanoseconds()
	runtime.SetBlockProfileRate(int(blockRateNS))
}

// MutexProfileFraction reports the configured mutex sampling fraction
// (0 = disabled).
func MutexProfileFraction() int { return mutexFraction }

// BlockProfileRate reports the configured block profiling threshold
// (0 = disabled).
func BlockProfileRate() time.Duration { return time.Duration(blockRateNS) }
