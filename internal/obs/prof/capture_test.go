package prof

import (
	"context"
	"strings"
	"testing"
	"time"
)

func kinds(arts []Artifact) map[string]Artifact {
	m := map[string]Artifact{}
	for _, a := range arts {
		m[a.Kind] = a
	}
	return m
}

func TestCaptureCycleWritesCoreProfiles(t *testing.T) {
	captor := testCaptor(t)
	arts, err := captor.CaptureCycle(context.Background(), CauseScheduled, "")
	if err != nil {
		t.Fatal(err)
	}
	byKind := kinds(arts)
	for _, k := range []string{"cpu", "heap", "goroutine"} {
		a, ok := byKind[k]
		if !ok {
			t.Fatalf("cycle missing %s artifact: %+v", k, arts)
		}
		if a.Cause != CauseScheduled || a.Bytes <= 0 {
			t.Fatalf("%s artifact malformed: %+v", k, a)
		}
		if data, _, err := captor.Store().Read(a.ID); err != nil || int64(len(data)) != a.Bytes {
			t.Fatalf("%s artifact read back: %v", k, err)
		}
	}
	if byKind["heap"].Note == "" || !strings.Contains(byKind["heap"].Note, "inuse") {
		t.Fatalf("heap note missing: %q", byKind["heap"].Note)
	}

	// The second cycle's heap note carries a delta against the first.
	arts2, err := captor.CaptureCycle(context.Background(), "slo_burn", "slo_burn api: burning")
	if err != nil {
		t.Fatal(err)
	}
	byKind2 := kinds(arts2)
	if !strings.Contains(byKind2["heap"].Note, "vs prev") {
		t.Fatalf("second heap note should carry a delta, got %q", byKind2["heap"].Note)
	}
	if byKind2["cpu"].Event != "slo_burn api: burning" {
		t.Fatalf("triggered artifacts must link the event, got %q", byKind2["cpu"].Event)
	}

	st := captor.Stats()
	if st.Cycles != 2 || st.LastCapture.IsZero() {
		t.Fatalf("captor stats: %+v", st)
	}
}

func TestCaptureCycleIncludesContentionProfilesWhenEnabled(t *testing.T) {
	EnableMutexProfiling(2)
	EnableBlockProfiling(time.Microsecond)
	defer func() {
		EnableMutexProfiling(0)
		EnableBlockProfiling(0)
	}()

	captor := testCaptor(t)
	arts, err := captor.CaptureCycle(context.Background(), CauseScheduled, "")
	if err != nil {
		t.Fatal(err)
	}
	byKind := kinds(arts)
	if _, ok := byKind["mutex"]; !ok {
		t.Fatalf("mutex profile missing with fraction set: %+v", arts)
	}
	if _, ok := byKind["block"]; !ok {
		t.Fatalf("block profile missing with rate set: %+v", arts)
	}
	if !strings.Contains(byKind["mutex"].Note, "fraction=") {
		t.Fatalf("mutex note: %q", byKind["mutex"].Note)
	}
}

func TestCaptorStartStop(t *testing.T) {
	s, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	captor := NewCaptor(CaptorOptions{
		Store:         s,
		CPUWindow:     time.Millisecond,
		TriggerWindow: time.Millisecond,
		Interval:      5 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	captor.Start(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for captor.Stats().Cycles == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	captor.Stop()
	if captor.Stats().Cycles == 0 {
		t.Fatal("periodic loop never captured")
	}
	if len(s.List()) == 0 {
		t.Fatal("periodic loop wrote no artifacts")
	}
}
