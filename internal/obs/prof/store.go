package prof

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"maras/internal/obs"
)

// Store retention defaults: how many capture artifacts stay on disk
// and how many bytes they may occupy together.
const (
	DefaultMaxArtifacts = 48
	DefaultMaxBytes     = 64 << 20
)

// ArtifactExt is the capture artifact file extension.
const ArtifactExt = ".pprof"

// manifestName is the CRC-indexed artifact manifest kept next to the
// artifacts.
const manifestName = "MANIFEST.json"

// Artifact is one manifest entry: a profile written to disk, what
// kind it is, why it was taken, and the CRC-32 the bytes must still
// hash to when read back.
type Artifact struct {
	ID      string    `json:"id"`   // "<seq>-<kind>", the /debug/profiles/{id} handle
	Seq     uint64    `json:"seq"`  // monotonic capture sequence; eviction order
	Kind    string    `json:"kind"` // cpu, heap, goroutine, mutex, block
	Cause   string    `json:"cause"`
	Event   string    `json:"event,omitempty"` // linked audit event, for triggered captures
	TakenAt time.Time `json:"taken_at"`
	WallMS  float64   `json:"wall_ms"` // capture wall time
	Bytes   int64     `json:"bytes"`
	CRC     uint32    `json:"crc32"`
	Note    string    `json:"note,omitempty"` // kind-specific summary (label attribution, heap delta)
}

// file returns the artifact's on-disk file name.
func (a Artifact) file() string { return a.ID + ArtifactExt }

// manifest is the on-disk index. Seq persists the allocator so IDs
// never collide across restarts even after evictions.
type manifest struct {
	Seq       uint64     `json:"seq"`
	Artifacts []Artifact `json:"artifacts"` // oldest..newest
}

// StoreOptions configures OpenStore. Every field is optional.
type StoreOptions struct {
	// MaxArtifacts bounds how many artifacts are retained (<= 0 =
	// DefaultMaxArtifacts).
	MaxArtifacts int
	// MaxBytes bounds the artifacts' combined size (<= 0 =
	// DefaultMaxBytes). The newest artifact is never evicted, so one
	// oversized capture can transiently exceed the cap.
	MaxBytes int64
	// Metrics exports maras_prof_store_* series.
	Metrics *obs.Registry
	// Logger reports recovery actions and eviction churn.
	Logger *slog.Logger
	// OnAdd, when non-nil, runs after every successful artifact write,
	// outside the store lock on the capturing goroutine — the hook the
	// wide-event ring uses to back-link in-flight events to the
	// artifact that profiled them.
	OnAdd func(Artifact)
}

// Store is a bounded on-disk ring of profile artifacts with a
// CRC-indexed manifest. Artifacts and the manifest are written with
// the snapshot store's atomic discipline — temp file, fsync, rename,
// directory fsync — so a crash mid-write can never leave a torn
// artifact listed as good: either the manifest names the complete
// file or recovery drops it.
type Store struct {
	dir    string
	max    int
	maxB   int64
	logger *slog.Logger
	onAdd  func(Artifact)

	artifactsG *obs.Gauge   // nil without metrics
	bytesG     *obs.Gauge   // nil without metrics
	evictedC   *obs.Counter // nil without metrics

	mu      sync.Mutex
	seq     uint64
	entries []Artifact // oldest..newest
	bytes   int64
	evicted uint64
}

// OpenStore opens (creating if needed) the artifact directory and
// recovers its manifest: orphaned temp files are swept, listed
// artifacts are verified against their recorded size and CRC (corrupt
// or missing ones are dropped and deleted), and artifact files the
// manifest does not know — a crash between artifact rename and
// manifest rename — are adopted with a recomputed CRC.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if opts.MaxArtifacts <= 0 {
		opts.MaxArtifacts = DefaultMaxArtifacts
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: open store: %w", err)
	}
	s := &Store{dir: dir, max: opts.MaxArtifacts, maxB: opts.MaxBytes, logger: opts.Logger, onAdd: opts.OnAdd}
	if reg := opts.Metrics; reg != nil {
		s.artifactsG = reg.Gauge("maras_prof_store_artifacts",
			"Profile capture artifacts retained on disk.")
		s.bytesG = reg.Gauge("maras_prof_store_bytes",
			"Bytes of profile capture artifacts retained on disk.")
		s.evictedC = reg.Counter("maras_prof_store_evicted_total",
			"Profile artifacts evicted by count or byte retention.")
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the artifact directory.
func (s *Store) Dir() string { return s.dir }

// recover rebuilds the in-memory index from disk, repairing whatever
// a crash left behind.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("prof: scan store: %w", err)
	}
	onDisk := map[string]int64{} // artifact file name -> size
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.Contains(name, ".tmp-") {
			// A crash mid-write: the rename never happened, the
			// content is untrusted. Sweep it.
			if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
				s.log().Warn("prof store: swept orphaned temp file", "file", name)
			}
			continue
		}
		if strings.HasSuffix(name, ArtifactExt) {
			if fi, err := de.Info(); err == nil {
				onDisk[name] = fi.Size()
			}
		}
	}

	var m manifest
	dirty := false
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	switch {
	case err == nil:
		if jerr := json.Unmarshal(raw, &m); jerr != nil {
			s.log().Warn("prof store: corrupt manifest, rebuilding from artifacts", "err", jerr)
			m = manifest{}
			dirty = true
		}
	case os.IsNotExist(err):
		dirty = len(onDisk) > 0
	default:
		return fmt.Errorf("prof: read manifest: %w", err)
	}

	// Verify every listed artifact: present, right size, right CRC.
	kept := m.Artifacts[:0]
	for _, a := range m.Artifacts {
		size, ok := onDisk[a.file()]
		if !ok {
			s.log().Warn("prof store: manifest entry missing on disk, dropped", "id", a.ID)
			dirty = true
			continue
		}
		delete(onDisk, a.file())
		if size != a.Bytes || !s.verifyCRC(a) {
			s.log().Warn("prof store: artifact fails verification, dropped", "id", a.ID)
			os.Remove(filepath.Join(s.dir, a.file()))
			dirty = true
			continue
		}
		kept = append(kept, a)
		if a.Seq >= m.Seq {
			m.Seq = a.Seq + 1
		}
	}

	// Adopt artifacts the manifest does not know: recompute the CRC so
	// the index stays trustworthy, and date them from the file.
	for name := range onDisk {
		a, ok := s.adopt(name)
		if !ok {
			continue
		}
		kept = append(kept, a)
		if a.Seq >= m.Seq {
			m.Seq = a.Seq + 1
		}
		dirty = true
		s.log().Warn("prof store: adopted unlisted artifact", "id", a.ID)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Seq < kept[j].Seq })

	s.entries = kept
	s.seq = m.Seq
	s.bytes = 0
	for _, a := range kept {
		s.bytes += a.Bytes
	}
	s.evictLocked()
	s.syncGauges()
	if dirty {
		return s.writeManifestLocked()
	}
	return nil
}

// adopt builds a manifest entry for an unlisted artifact file.
func (s *Store) adopt(name string) (Artifact, bool) {
	id := strings.TrimSuffix(name, ArtifactExt)
	seqStr, kind, ok := strings.Cut(id, "-")
	if !ok {
		return Artifact{}, false
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return Artifact{}, false
	}
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, false
	}
	a := Artifact{
		ID:    id,
		Seq:   seq,
		Kind:  kind,
		Cause: "recovered",
		Bytes: int64(len(data)),
		CRC:   crc32.ChecksumIEEE(data),
	}
	if fi, err := os.Stat(path); err == nil {
		a.TakenAt = fi.ModTime()
	}
	return a, true
}

// verifyCRC re-hashes an artifact file against its manifest entry.
func (s *Store) verifyCRC(a Artifact) bool {
	data, err := os.ReadFile(filepath.Join(s.dir, a.file()))
	if err != nil {
		return false
	}
	return crc32.ChecksumIEEE(data) == a.CRC
}

// Add writes one capture artifact and its manifest entry, evicting
// the oldest artifacts past the count or byte caps. The OnAdd hook
// (if any) runs after the write, outside the store lock.
func (s *Store) Add(kind, cause, event, note string, data []byte, wall time.Duration) (Artifact, error) {
	a, err := s.add(kind, cause, event, note, data, wall)
	if err == nil && s.onAdd != nil {
		s.onAdd(a)
	}
	return a, err
}

func (s *Store) add(kind, cause, event, note string, data []byte, wall time.Duration) (Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := Artifact{
		Seq:     s.seq,
		Kind:    kind,
		Cause:   cause,
		Event:   event,
		Note:    note,
		TakenAt: time.Now(),
		WallMS:  float64(wall.Microseconds()) / 1000,
		Bytes:   int64(len(data)),
		CRC:     crc32.ChecksumIEEE(data),
	}
	a.ID = fmt.Sprintf("%06d-%s", a.Seq, kind)
	s.seq++
	if err := atomicWrite(filepath.Join(s.dir, a.file()), data); err != nil {
		return Artifact{}, err
	}
	s.entries = append(s.entries, a)
	s.bytes += a.Bytes
	s.evictLocked()
	s.syncGauges()
	if err := s.writeManifestLocked(); err != nil {
		return Artifact{}, err
	}
	return a, nil
}

// evictLocked drops oldest-first until both retention caps hold. The
// newest artifact always survives: a capture that itself exceeds the
// byte cap is still worth having until the next one replaces it.
func (s *Store) evictLocked() {
	for len(s.entries) > 1 && (len(s.entries) > s.max || s.bytes > s.maxB) {
		victim := s.entries[0]
		s.entries = s.entries[1:]
		s.bytes -= victim.Bytes
		s.evicted++
		if s.evictedC != nil {
			s.evictedC.Inc()
		}
		os.Remove(filepath.Join(s.dir, victim.file()))
		s.log().Debug("prof store: evicted artifact", "id", victim.ID, "bytes", victim.Bytes)
	}
}

func (s *Store) syncGauges() {
	if s.artifactsG != nil {
		s.artifactsG.Set(int64(len(s.entries)))
	}
	if s.bytesG != nil {
		s.bytesG.Set(s.bytes)
	}
}

// writeManifestLocked persists the index atomically.
func (s *Store) writeManifestLocked() error {
	m := manifest{Seq: s.seq, Artifacts: s.entries}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("prof: encode manifest: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, manifestName), append(data, '\n'))
}

// List returns the retained artifacts, oldest first.
func (s *Store) List() []Artifact {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Artifact, len(s.entries))
	copy(out, s.entries)
	return out
}

// Get returns the manifest entry for id.
func (s *Store) Get(id string) (Artifact, bool) {
	if s == nil {
		return Artifact{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.entries {
		if a.ID == id {
			return a, true
		}
	}
	return Artifact{}, false
}

// Read returns an artifact's bytes after verifying them against the
// manifest CRC, so a damaged file can never masquerade as a profile.
func (s *Store) Read(id string) ([]byte, Artifact, error) {
	a, ok := s.Get(id)
	if !ok {
		return nil, Artifact{}, fmt.Errorf("prof: no artifact %q", id)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, a.file()))
	if err != nil {
		return nil, a, fmt.Errorf("prof: read artifact %q: %w", id, err)
	}
	if crc32.ChecksumIEEE(data) != a.CRC {
		return nil, a, fmt.Errorf("prof: artifact %q fails CRC check", id)
	}
	return data, a, nil
}

// StoreStats summarizes retention state.
type StoreStats struct {
	Dir          string `json:"dir"`
	Artifacts    int    `json:"artifacts"`
	Bytes        int64  `json:"bytes"`
	Evicted      uint64 `json:"evicted"`
	MaxArtifacts int    `json:"max_artifacts"`
	MaxBytes     int64  `json:"max_bytes"`
}

// Stats returns retention totals.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir:          s.dir,
		Artifacts:    len(s.entries),
		Bytes:        s.bytes,
		Evicted:      s.evicted,
		MaxArtifacts: s.max,
		MaxBytes:     s.maxB,
	}
}

func (s *Store) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record (slog.DiscardHandler arrives in a
// newer Go than go.mod pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// atomicWrite lands data at path via the store codec's discipline:
// temp file in the same directory, fsync, rename, directory fsync.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("prof: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("prof: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("prof: sync temp: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		cleanup()
		return fmt.Errorf("prof: chmod temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("prof: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("prof: rename: %w", err)
	}
	// The rename lives in the directory; fsync it so a crash cannot
	// roll the entry back.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
