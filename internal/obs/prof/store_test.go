package prof

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testData(n int, fill byte) []byte { return bytes.Repeat([]byte{fill}, n) }

func TestStoreAddListReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(100, 0xAB)
	a, err := s.Add("cpu", "scheduled", "", "note", data, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == "" || a.Kind != "cpu" || a.Bytes != 100 {
		t.Fatalf("bad artifact: %+v", a)
	}
	if a.CRC != crc32.ChecksumIEEE(data) {
		t.Fatalf("CRC mismatch: %x", a.CRC)
	}
	got, meta, err := s.Read(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || meta.Note != "note" {
		t.Fatalf("read mismatch: %d bytes, note %q", len(got), meta.Note)
	}
	if l := s.List(); len(l) != 1 || l[0].ID != a.ID {
		t.Fatalf("list: %+v", l)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) should miss")
	}
}

func TestStoreCountEvictionOrdering(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{MaxArtifacts: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		a, err := s.Add("heap", "scheduled", "", "", testData(10, byte(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, a.ID)
	}
	l := s.List()
	if len(l) != 3 {
		t.Fatalf("want 3 retained, got %d", len(l))
	}
	// Oldest-first eviction: the two first adds are gone, order is
	// ascending by seq.
	want := ids[2:]
	for i, a := range l {
		if a.ID != want[i] {
			t.Fatalf("retained[%d] = %s, want %s", i, a.ID, want[i])
		}
	}
	for _, id := range ids[:2] {
		if _, ok := s.Get(id); ok {
			t.Fatalf("%s should be evicted", id)
		}
		if _, err := os.Stat(filepath.Join(dir, id+ArtifactExt)); !os.IsNotExist(err) {
			t.Fatalf("%s file should be deleted, err=%v", id, err)
		}
	}
	if st := s.Stats(); st.Evicted != 2 {
		t.Fatalf("evicted count = %d, want 2", st.Evicted)
	}
}

func TestStoreByteCapEviction(t *testing.T) {
	dir := t.TempDir()
	// 250-byte cap, 100-byte artifacts: the third add must evict the
	// first.
	s, err := OpenStore(dir, StoreOptions{MaxArtifacts: 100, MaxBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := s.Add("cpu", "scheduled", "", "", testData(100, 1), 0)
	a2, _ := s.Add("cpu", "scheduled", "", "", testData(100, 2), 0)
	a3, _ := s.Add("cpu", "scheduled", "", "", testData(100, 3), 0)
	l := s.List()
	if len(l) != 2 || l[0].ID != a2.ID || l[1].ID != a3.ID {
		t.Fatalf("byte-cap eviction wrong: %+v", l)
	}
	if _, ok := s.Get(a1.ID); ok {
		t.Fatal("oldest should be evicted under byte pressure")
	}
	if st := s.Stats(); st.Bytes != 200 {
		t.Fatalf("bytes = %d, want 200", st.Bytes)
	}

	// One oversized capture: everything older goes, but the newest
	// itself always survives.
	big, err := s.Add("heap", "scheduled", "", "", testData(400, 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	l = s.List()
	if len(l) != 1 || l[0].ID != big.ID {
		t.Fatalf("oversized newest must survive alone: %+v", l)
	}
}

func TestStoreRecoverAfterCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Add("cpu", "scheduled", "", "", testData(50, 1), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: an orphaned temp file, an artifact
	// that never made it into the manifest, and a listed artifact whose
	// bytes were torn (CRC no longer matches).
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json.tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := testData(64, 7)
	if err := os.WriteFile(filepath.Join(dir, "000099-heap"+ArtifactExt), orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, keep.file()), testData(50, 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := s2.List()
	if len(l) != 1 {
		t.Fatalf("want 1 recovered artifact, got %+v", l)
	}
	got := l[0]
	if got.ID != "000099-heap" || got.Kind != "heap" || got.Cause != "recovered" {
		t.Fatalf("adopted artifact wrong: %+v", got)
	}
	if data, _, err := s2.Read(got.ID); err != nil || !bytes.Equal(data, orphan) {
		t.Fatalf("adopted read: %v", err)
	}
	// The torn artifact is dropped from the manifest and deleted.
	if _, ok := s2.Get(keep.ID); ok {
		t.Fatal("torn artifact should be dropped on recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, keep.file())); !os.IsNotExist(err) {
		t.Fatal("torn artifact file should be deleted")
	}
	// Temp file swept.
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json.tmp-123")); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file should be swept")
	}
	// Sequence numbering resumes past the adopted artifact, so IDs
	// never collide.
	next, err := s2.Add("cpu", "scheduled", "", "", testData(10, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq <= 99 {
		t.Fatalf("seq must resume past adopted max, got %d", next.Seq)
	}
}

func TestStoreRecoverCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Add("goroutine", "scheduled", "", "", testData(30, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := s2.List()
	if len(l) != 1 || l[0].ID != a.ID || l[0].Cause != "recovered" {
		t.Fatalf("rebuild from artifacts failed: %+v", l)
	}
	// The rebuilt manifest must itself be valid JSON on disk.
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Artifacts []Artifact `json:"artifacts"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("rewritten manifest invalid: %v", err)
	}
	if len(m.Artifacts) != 1 {
		t.Fatalf("rewritten manifest entries: %+v", m.Artifacts)
	}
}

func TestStoreReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Add("cpu", "scheduled", "", "", testData(40, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, a.file()), testData(40, 5), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read(a.ID); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("want CRC failure, got %v", err)
	}
}
