package prof

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"maras/internal/obs"
)

// Capture cadence defaults.
const (
	DefaultCPUWindow     = 2 * time.Second
	DefaultTriggerWindow = 500 * time.Millisecond
	DefaultInterval      = 60 * time.Second
)

// CauseScheduled marks artifacts taken by the periodic loop; every
// other cause names the anomaly (audit rule or slow_trace) that
// triggered the capture.
const CauseScheduled = "scheduled"

// CaptorOptions configures NewCaptor.
type CaptorOptions struct {
	// Store receives capture artifacts. Required.
	Store *Store
	// CPUWindow is how long scheduled CPU captures record (<= 0 =
	// DefaultCPUWindow).
	CPUWindow time.Duration
	// TriggerWindow is the shorter CPU window for anomaly-triggered
	// captures, so a capture cannot outlive the incident that asked
	// for it (<= 0 = DefaultTriggerWindow).
	TriggerWindow time.Duration
	// Interval is the scheduled capture period. 0 disables the
	// periodic loop (triggered captures still work); < 0 =
	// DefaultInterval.
	Interval time.Duration
	// Metrics exports maras_prof_capture_* series.
	Metrics *obs.Registry
	// Logger reports capture failures.
	Logger *slog.Logger
}

// Captor records profile capture cycles — a CPU window plus heap,
// goroutine, mutex, and block snapshots — into a Store, either on a
// periodic schedule (Start) or on demand (CaptureCycle, used by
// Trigger for anomaly-driven snapshots). Cycles are serialized: the
// runtime allows one active CPU profile per process, and overlapping
// a scheduled cycle with a triggered one would corrupt neither but
// fail one of them for no benefit.
type Captor struct {
	store         *Store
	cpuWindow     time.Duration
	triggerWindow time.Duration
	interval      time.Duration
	logger        *slog.Logger

	capturesC *obs.Counter   // nil without metrics
	errorsC   *obs.Counter   // nil without metrics
	secondsH  *obs.Histogram // nil without metrics

	cycleMu sync.Mutex // serializes capture cycles
	stateMu sync.Mutex // guards prevHeapInUse, cycles, lastCycle
	prev    heapBaseline
	cycles  uint64
	last    time.Time
	lastErr string

	loopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// heapBaseline remembers the previous capture's in-use heap so the
// next heap artifact can carry a delta note.
type heapBaseline struct {
	valid   bool
	inUse   int64
	objects int64
}

// NewCaptor builds a Captor. opts.Store must be non-nil.
func NewCaptor(opts CaptorOptions) *Captor {
	if opts.Store == nil {
		panic("prof: NewCaptor requires a Store")
	}
	if opts.CPUWindow <= 0 {
		opts.CPUWindow = DefaultCPUWindow
	}
	if opts.TriggerWindow <= 0 {
		opts.TriggerWindow = DefaultTriggerWindow
	}
	if opts.Interval < 0 {
		opts.Interval = DefaultInterval
	}
	c := &Captor{
		store:         opts.Store,
		cpuWindow:     opts.CPUWindow,
		triggerWindow: opts.TriggerWindow,
		interval:      opts.Interval,
		logger:        opts.Logger,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if reg := opts.Metrics; reg != nil {
		c.capturesC = reg.Counter("maras_prof_captures_total",
			"Profile capture cycles completed.")
		c.errorsC = reg.Counter("maras_prof_capture_errors_total",
			"Individual profile captures that failed inside a cycle.")
		c.secondsH = reg.Histogram("maras_prof_capture_seconds",
			"Capture cycle wall time excluding the CPU sampling window.",
			obs.DefaultLatencyBuckets)
	}
	return c
}

// Store returns the artifact store backing the captor.
func (c *Captor) Store() *Store { return c.store }

// Start runs the periodic capture loop until ctx is cancelled or Stop
// is called. No-op when the interval is 0.
func (c *Captor) Start(ctx context.Context) {
	if c.interval <= 0 {
		close(c.done)
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.stop:
				return
			case <-t.C:
				if _, err := c.CaptureCycle(ctx, CauseScheduled, ""); err != nil {
					c.log().Warn("prof: scheduled capture failed", "err", err)
				}
			}
		}
	}()
}

// Stop halts the periodic loop and waits for an in-flight scheduled
// cycle's store writes to finish.
func (c *Captor) Stop() {
	c.loopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// CaptureCycle records one full cycle — CPU window, heap, goroutine,
// and (when enabled) mutex and block profiles — into the store,
// tagging every artifact with cause and the linked audit event. The
// cause picks the CPU window: scheduled captures use the full window,
// anomaly-triggered ones the shorter trigger window so the snapshot
// lands while the incident is still in progress. Returns the
// artifacts written; individual profile failures are counted and
// logged but do not abort the rest of the cycle.
func (c *Captor) CaptureCycle(ctx context.Context, cause, event string) ([]Artifact, error) {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()

	window := c.cpuWindow
	if cause != CauseScheduled {
		window = c.triggerWindow
	}

	var arts []Artifact
	var firstErr error
	record := func(a Artifact, err error, kind string) {
		if err != nil {
			if c.errorsC != nil {
				c.errorsC.Inc()
			}
			c.log().Warn("prof: capture failed", "kind", kind, "cause", cause, "err", err)
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		arts = append(arts, a)
	}

	start := time.Now()
	a, err := c.captureCPU(ctx, cause, event, window)
	record(a, err, "cpu")

	a, err = c.captureHeap(cause, event)
	record(a, err, "heap")
	a, err = c.captureLookup("goroutine", cause, event, "")
	record(a, err, "goroutine")
	if MutexProfileFraction() > 0 {
		a, err = c.captureLookup("mutex", cause, event,
			fmt.Sprintf("fraction=1/%d", MutexProfileFraction()))
		record(a, err, "mutex")
	}
	if BlockProfileRate() > 0 {
		a, err = c.captureLookup("block", cause, event,
			fmt.Sprintf("rate=%s", BlockProfileRate()))
		record(a, err, "block")
	}

	if c.capturesC != nil {
		c.capturesC.Inc()
	}
	if c.secondsH != nil {
		// The CPU window is deliberate sampling time, not overhead;
		// report only the work around it.
		work := time.Since(start) - window
		if work < 0 {
			work = 0
		}
		c.secondsH.Observe(work.Seconds())
	}
	c.stateMu.Lock()
	c.cycles++
	c.last = time.Now()
	if firstErr != nil {
		c.lastErr = firstErr.Error()
	} else {
		c.lastErr = ""
	}
	c.stateMu.Unlock()
	if len(arts) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return arts, nil
}

// captureCPU records a CPU profile window and annotates the artifact
// with per-label-key sample attribution parsed back out of the
// profile.
func (c *Captor) captureCPU(ctx context.Context, cause, event string, window time.Duration) (Artifact, error) {
	var buf bytes.Buffer
	start := time.Now()
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Something else (an operator on /debug/pprof/profile, or a
		// concurrent test) holds the one process-wide CPU profile.
		return Artifact{}, fmt.Errorf("prof: cpu profile busy: %w", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(window):
	}
	pprof.StopCPUProfile()

	note := ""
	if stats, err := ParseCPULabels(buf.Bytes()); err == nil && stats.TotalWeight > 0 {
		note = cpuNote(stats)
	}
	return c.store.Add("cpu", cause, event, note, buf.Bytes(), time.Since(start))
}

// cpuNote renders "stage 83% · route 4%" style attribution from
// parsed label stats.
func cpuNote(stats CPULabelStats) string {
	keys := make([]string, 0, len(stats.ByKey))
	for k := range stats.ByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %.0f%%",
			k, 100*float64(stats.ByKey[k])/float64(stats.TotalWeight)))
	}
	if len(parts) == 0 {
		return "no labeled samples"
	}
	return "labeled: " + strings.Join(parts, ", ")
}

// captureHeap records the heap profile with an in-use delta note
// against the previous heap capture.
func (c *Captor) captureHeap(cause, event string) (Artifact, error) {
	var buf bytes.Buffer
	start := time.Now()
	p := pprof.Lookup("heap")
	if p == nil {
		return Artifact{}, fmt.Errorf("prof: heap profile unavailable")
	}
	if err := p.WriteTo(&buf, 0); err != nil {
		return Artifact{}, fmt.Errorf("prof: write heap profile: %w", err)
	}

	inUse, objects := heapInUse()
	c.stateMu.Lock()
	prev := c.prev
	c.prev = heapBaseline{valid: true, inUse: inUse, objects: objects}
	c.stateMu.Unlock()
	note := fmt.Sprintf("inuse %s / %d objs", fmtBytes(inUse), objects)
	if prev.valid {
		note += fmt.Sprintf(" (%s vs prev)", fmtDelta(inUse-prev.inUse))
	}
	return c.store.Add("heap", cause, event, note, buf.Bytes(), time.Since(start))
}

// captureLookup records a named runtime profile (goroutine, mutex,
// block) via pprof.Lookup.
func (c *Captor) captureLookup(name, cause, event, note string) (Artifact, error) {
	var buf bytes.Buffer
	start := time.Now()
	p := pprof.Lookup(name)
	if p == nil {
		return Artifact{}, fmt.Errorf("prof: %s profile unavailable", name)
	}
	if err := p.WriteTo(&buf, 0); err != nil {
		return Artifact{}, fmt.Errorf("prof: write %s profile: %w", name, err)
	}
	if name == "goroutine" {
		note = fmt.Sprintf("%d goroutines", runtime.NumGoroutine())
	}
	return c.store.Add(name, cause, event, note, buf.Bytes(), time.Since(start))
}

// heapInUse totals sampled in-use bytes and objects from the runtime
// memory profile records.
func heapInUse() (bytes, objects int64) {
	n, _ := runtime.MemProfile(nil, true)
	recs := make([]runtime.MemProfileRecord, n+64)
	n, ok := runtime.MemProfile(recs, true)
	if !ok {
		// Records grew between calls; one retry with headroom.
		recs = make([]runtime.MemProfileRecord, n+128)
		n, ok = runtime.MemProfile(recs, true)
		if !ok {
			return 0, 0
		}
	}
	for _, r := range recs[:n] {
		bytes += r.InUseBytes()
		objects += r.InUseObjects()
	}
	return bytes, objects
}

// CaptorStats summarizes captor state for /debug/profiles.
type CaptorStats struct {
	Cycles        uint64    `json:"cycles"`
	LastCapture   time.Time `json:"last_capture,omitempty"`
	LastError     string    `json:"last_error,omitempty"`
	CPUWindowMS   float64   `json:"cpu_window_ms"`
	TriggerWinMS  float64   `json:"trigger_window_ms"`
	IntervalMS    float64   `json:"interval_ms"`
	MutexFraction int       `json:"mutex_profile_fraction"`
	BlockRateMS   float64   `json:"block_profile_rate_ms"`
}

// Stats returns captor state.
func (c *Captor) Stats() CaptorStats {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return CaptorStats{
		Cycles:        c.cycles,
		LastCapture:   c.last,
		LastError:     c.lastErr,
		CPUWindowMS:   float64(c.cpuWindow.Microseconds()) / 1000,
		TriggerWinMS:  float64(c.triggerWindow.Microseconds()) / 1000,
		IntervalMS:    float64(c.interval.Microseconds()) / 1000,
		MutexFraction: MutexProfileFraction(),
		BlockRateMS:   float64(BlockProfileRate().Microseconds()) / 1000,
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtDelta renders a signed byte delta.
func fmtDelta(n int64) string {
	if n >= 0 {
		return "+" + fmtBytes(n)
	}
	return fmtBytes(n)
}

func (c *Captor) log() *slog.Logger {
	if c.logger != nil {
		return c.logger
	}
	return slog.New(discardHandler{})
}
