package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestMW(t *testing.T) (*HTTPMetrics, *Registry, *bytes.Buffer) {
	t.Helper()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	reg := NewRegistry()
	return NewHTTPMetrics(reg, logger), reg, &logBuf
}

func TestMiddlewareCountsAndLatency(t *testing.T) {
	mw, reg, logBuf := newTestMW(t)
	h := mw.Wrap("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello"))
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/ok"}, Label{"code", "2xx"}).Value(); v != 3 {
		t.Errorf("2xx counter = %d, want 3", v)
	}
	hist := reg.Histogram("http_request_duration_seconds", "", DefaultLatencyBuckets, Label{"route", "/ok"})
	if hist.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", hist.Count())
	}
	if !strings.Contains(logBuf.String(), "path=/ok") || !strings.Contains(logBuf.String(), "status=200") {
		t.Errorf("request log missing fields: %q", logBuf.String())
	}
}

func TestMiddlewareStatusClasses(t *testing.T) {
	mw, reg, _ := newTestMW(t)
	h := mw.Wrap("/nf", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nf", nil))
	if v := reg.Counter("http_requests_total", "", Label{"route", "/nf"}, Label{"code", "4xx"}).Value(); v != 1 {
		t.Errorf("4xx counter = %d, want 1", v)
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/nf"}, Label{"code", "2xx"}).Value(); v != 0 {
		t.Errorf("2xx counter = %d, want 0", v)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	mw, reg, logBuf := newTestMW(t)
	h := mw.Wrap("/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic escaped the middleware: %v", p)
			}
		}()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	}()
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if v := reg.Counter("http_panics_total", "").Value(); v != 1 {
		t.Errorf("panics counter = %d, want 1", v)
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/boom"}, Label{"code", "5xx"}).Value(); v != 1 {
		t.Errorf("5xx counter = %d, want 1", v)
	}
	if !strings.Contains(logBuf.String(), "kaboom") || !strings.Contains(logBuf.String(), "stack=") {
		t.Errorf("panic log missing detail: %q", logBuf.String())
	}
	// The handler (and therefore the server) must keep serving.
	ok := mw.Wrap("/after", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec2 := httptest.NewRecorder()
	ok.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/after", nil))
	if rec2.Code != http.StatusNoContent {
		t.Errorf("post-panic request status = %d", rec2.Code)
	}
}

func TestMiddlewareInflightGauge(t *testing.T) {
	mw, reg, _ := newTestMW(t)
	var seen int64 = -1
	h := mw.Wrap("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = reg.Gauge("http_inflight_requests", "").Value()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if seen != 1 {
		t.Errorf("in-flight during request = %d, want 1", seen)
	}
	if after := reg.Gauge("http_inflight_requests", "").Value(); after != 0 {
		t.Errorf("in-flight after request = %d, want 0", after)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo.").Add(5)
	h := MetricsHandler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "demo_total 5") || !strings.Contains(body, "go_goroutines") {
		t.Errorf("prometheus body incomplete:\n%s", body)
	}
	parsePrometheus(t, body)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var dump map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("expvar JSON invalid: %v", err)
	}
	if _, ok := dump["memstats"]; !ok {
		t.Error("expvar dump missing memstats")
	}
}

func TestHealthzHandler(t *testing.T) {
	h := HealthzHandler(func() map[string]any {
		return map[string]any{"signals": 12, "quarter": "2014Q1"}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["quarter"] != "2014Q1" {
		t.Errorf("healthz body = %v", body)
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", rec.Code)
	}
}

func TestStatusRecorderFlushPassthrough(t *testing.T) {
	mw, _, _ := newTestMW(t)
	h := mw.Wrap("/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("chunk"))
		f.Flush()
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

// nonFlusher hides httptest.ResponseRecorder's Flush so the wrapper's
// no-op path is exercised.
type nonFlusher struct{ http.ResponseWriter }

func TestStatusRecorderFlushNonFlusherNoOp(t *testing.T) {
	mw, _, _ := newTestMW(t)
	h := mw.Wrap("/stream", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.(http.Flusher).Flush() // must not panic
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(&nonFlusher{rec}, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if rec.Flushed {
		t.Error("flush leaked through a non-flushing writer")
	}
}

func TestRequestIDInboundEchoed(t *testing.T) {
	mw, _, logBuf := newTestMW(t)
	h := mw.Wrap("/id", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	req := httptest.NewRequest(http.MethodGet, "/id", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-supplied-42" {
		t.Errorf("response %s = %q, want the inbound ID echoed", RequestIDHeader, got)
	}
	if !strings.Contains(logBuf.String(), "request_id=client-supplied-42") {
		t.Errorf("request log missing inbound request ID: %q", logBuf.String())
	}
}

func TestRequestIDGeneratedWhenAbsentOrHostile(t *testing.T) {
	mw, _, logBuf := newTestMW(t)
	h := mw.Wrap("/id", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for _, inbound := range []string{"", "has space", "inject\"quote"} {
		logBuf.Reset()
		req := httptest.NewRequest(http.MethodGet, "/id", nil)
		if inbound != "" {
			req.Header.Set(RequestIDHeader, inbound)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get(RequestIDHeader)
		if got == inbound || !ValidRequestID(got) || len(got) != 16 {
			t.Errorf("inbound %q: response ID %q, want fresh 16-hex", inbound, got)
		}
		if !strings.Contains(logBuf.String(), "request_id="+got) {
			t.Errorf("log does not carry the generated ID %q: %q", got, logBuf.String())
		}
	}
}

func TestMiddlewareTracingJournalsRequests(t *testing.T) {
	mw, reg, _ := newTestMW(t)
	journal := NewJournal(8, time.Hour)
	mw.EnableTracing(journal)
	h := mw.Wrap("/traced/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, span := StartSpan(r.Context(), "child_work")
		span.SetAttr("cache", "lru_hit")
		span.End()
		w.Write([]byte("done"))
	}))
	req := httptest.NewRequest(http.MethodGet, "/traced/x", nil)
	req.Header.Set(RequestIDHeader, "trace-me-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	recent := journal.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("journal holds %d traces, want 1", len(recent))
	}
	tr := recent[0]
	if tr.ID != "trace-me-1" || tr.Name != "GET /traced/" {
		t.Errorf("trace identity = %q %q", tr.ID, tr.Name)
	}
	var root, child *SpanRecord
	for i := range tr.Spans {
		switch tr.Spans[i].Parent {
		case -1:
			root = &tr.Spans[i]
		default:
			child = &tr.Spans[i]
		}
	}
	if root == nil || child == nil {
		t.Fatalf("trace spans = %+v, want root + child", tr.Spans)
	}
	if root.Attrs["status"] != "200" || root.Attrs["path"] != "/traced/x" || root.Attrs["bytes"] != "4" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if child.Name != "child_work" || child.Parent != root.ID || child.Attrs["cache"] != "lru_hit" {
		t.Errorf("child span = %+v", child)
	}
	if v := reg.Counter("http_traces_total", "").Value(); v != 1 {
		t.Errorf("http_traces_total = %d, want 1", v)
	}
	if v := reg.Counter("http_slow_traces_total", "").Value(); v != 0 {
		t.Errorf("http_slow_traces_total = %d, want 0", v)
	}
}

func TestMiddlewareSlowTraceCountedAndLogged(t *testing.T) {
	mw, reg, logBuf := newTestMW(t)
	journal := NewJournal(8, time.Nanosecond) // everything is slow
	mw.EnableTracing(journal)
	h := mw.Wrap("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if v := reg.Counter("http_slow_traces_total", "").Value(); v != 1 {
		t.Errorf("http_slow_traces_total = %d, want 1", v)
	}
	if !strings.Contains(logBuf.String(), "slow request trace") {
		t.Errorf("slow trace not logged: %q", logBuf.String())
	}
	if recent := journal.Recent(0); len(recent) != 1 || !recent[0].Slow {
		t.Errorf("journal entry not flagged slow: %+v", recent)
	}
}

func TestMiddlewareWithoutTracingKeepsContextClean(t *testing.T) {
	mw, _, _ := newTestMW(t)
	h := mw.Wrap("/plain", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ActiveSpan(r.Context()) != nil {
			t.Error("span active without EnableTracing")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/plain", nil))
}

func TestReadyzHandler(t *testing.T) {
	ready := &Readiness{}
	h := ReadyzHandler(ready, func() map[string]any { return map[string]any{"quarter": "2014Q1"} })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready status = %d, want 503", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "unavailable" {
		t.Errorf("pre-ready body = %v", body)
	}

	ready.SetReady()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-ready status = %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ready" || body["quarter"] != "2014Q1" {
		t.Errorf("post-ready body = %v", body)
	}
}

func TestReadyzNilReadinessStays503(t *testing.T) {
	h := ReadyzHandler(nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("nil readiness status = %d, want 503", rec.Code)
	}
}
