package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestMW(t *testing.T) (*HTTPMetrics, *Registry, *bytes.Buffer) {
	t.Helper()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	reg := NewRegistry()
	return NewHTTPMetrics(reg, logger), reg, &logBuf
}

func TestMiddlewareCountsAndLatency(t *testing.T) {
	mw, reg, logBuf := newTestMW(t)
	h := mw.Wrap("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello"))
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/ok"}, Label{"code", "2xx"}).Value(); v != 3 {
		t.Errorf("2xx counter = %d, want 3", v)
	}
	hist := reg.Histogram("http_request_duration_seconds", "", DefaultLatencyBuckets, Label{"route", "/ok"})
	if hist.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", hist.Count())
	}
	if !strings.Contains(logBuf.String(), "path=/ok") || !strings.Contains(logBuf.String(), "status=200") {
		t.Errorf("request log missing fields: %q", logBuf.String())
	}
}

func TestMiddlewareStatusClasses(t *testing.T) {
	mw, reg, _ := newTestMW(t)
	h := mw.Wrap("/nf", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nf", nil))
	if v := reg.Counter("http_requests_total", "", Label{"route", "/nf"}, Label{"code", "4xx"}).Value(); v != 1 {
		t.Errorf("4xx counter = %d, want 1", v)
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/nf"}, Label{"code", "2xx"}).Value(); v != 0 {
		t.Errorf("2xx counter = %d, want 0", v)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	mw, reg, logBuf := newTestMW(t)
	h := mw.Wrap("/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic escaped the middleware: %v", p)
			}
		}()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	}()
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if v := reg.Counter("http_panics_total", "").Value(); v != 1 {
		t.Errorf("panics counter = %d, want 1", v)
	}
	if v := reg.Counter("http_requests_total", "", Label{"route", "/boom"}, Label{"code", "5xx"}).Value(); v != 1 {
		t.Errorf("5xx counter = %d, want 1", v)
	}
	if !strings.Contains(logBuf.String(), "kaboom") || !strings.Contains(logBuf.String(), "stack=") {
		t.Errorf("panic log missing detail: %q", logBuf.String())
	}
	// The handler (and therefore the server) must keep serving.
	ok := mw.Wrap("/after", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec2 := httptest.NewRecorder()
	ok.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/after", nil))
	if rec2.Code != http.StatusNoContent {
		t.Errorf("post-panic request status = %d", rec2.Code)
	}
}

func TestMiddlewareInflightGauge(t *testing.T) {
	mw, reg, _ := newTestMW(t)
	var seen int64 = -1
	h := mw.Wrap("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = reg.Gauge("http_inflight_requests", "").Value()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if seen != 1 {
		t.Errorf("in-flight during request = %d, want 1", seen)
	}
	if after := reg.Gauge("http_inflight_requests", "").Value(); after != 0 {
		t.Errorf("in-flight after request = %d, want 0", after)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo.").Add(5)
	h := MetricsHandler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "demo_total 5") || !strings.Contains(body, "go_goroutines") {
		t.Errorf("prometheus body incomplete:\n%s", body)
	}
	parsePrometheus(t, body)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var dump map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("expvar JSON invalid: %v", err)
	}
	if _, ok := dump["memstats"]; !ok {
		t.Error("expvar dump missing memstats")
	}
}

func TestHealthzHandler(t *testing.T) {
	h := HealthzHandler(func() map[string]any {
		return map[string]any{"signals": 12, "quarter": "2014Q1"}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["quarter"] != "2014Q1" {
		t.Errorf("healthz body = %v", body)
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", rec.Code)
	}
}
