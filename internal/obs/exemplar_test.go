package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "help", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.06, "trace-b") // same bucket: last writer wins
	h.ObserveExemplar(0.5, "trace-c")
	h.ObserveExemplar(5, "trace-inf")
	h.Observe(0.07) // no trace: must not clobber the exemplar

	if e := h.BucketExemplar(0); e == nil || e.TraceID != "trace-b" || e.Value != 0.06 {
		t.Fatalf("bucket 0 exemplar = %+v, want trace-b", e)
	}
	if e := h.BucketExemplar(1); e == nil || e.TraceID != "trace-c" {
		t.Fatalf("bucket 1 exemplar = %+v, want trace-c", e)
	}
	if e := h.BucketExemplar(2); e == nil || e.TraceID != "trace-inf" {
		t.Fatalf("+Inf bucket exemplar = %+v, want trace-inf", e)
	}
	if e := h.BucketExemplar(3); e != nil {
		t.Fatalf("out-of-range exemplar = %+v, want nil", e)
	}
	if e := h.BucketExemplar(-1); e != nil {
		t.Fatalf("negative index exemplar = %+v, want nil", e)
	}
}

func TestOpenMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "abcdef0123456789")

	var classic, om strings.Builder
	reg.WritePrometheus(&classic)
	reg.WriteOpenMetrics(&om)

	if strings.Contains(classic.String(), "# {trace_id=") {
		t.Fatalf("classic exposition must not carry exemplars:\n%s", classic.String())
	}
	if !strings.Contains(om.String(), `# {trace_id="abcdef0123456789"} 0.05`) {
		t.Fatalf("openmetrics exposition missing exemplar:\n%s", om.String())
	}
	// Exemplars attach to bucket lines only, never to _sum/_count.
	for _, line := range strings.Split(om.String(), "\n") {
		if (strings.Contains(line, "_sum") || strings.Contains(line, "_count")) &&
			strings.Contains(line, "trace_id") {
			t.Fatalf("exemplar on non-bucket line: %s", line)
		}
	}
}

func TestMetricsHandlerOpenMetricsNegotiation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("neg_seconds", "help", []float64{1})
	h.ObserveExemplar(0.5, "deadbeefcafe0123")
	handler := MetricsHandler(reg)

	// Accept-header negotiation.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Fatalf("openmetrics body must end with # EOF:\n...%s", body[max(0, len(body)-80):])
	}
	if !strings.Contains(body, `trace_id="deadbeefcafe0123"`) {
		t.Fatal("openmetrics body missing exemplar")
	}

	// Query-parameter override.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=openmetrics", nil))
	if !strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatal("?format=openmetrics did not negotiate OpenMetrics")
	}

	// Default stays classic Prometheus text without exemplars.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), "trace_id") || strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatal("classic exposition leaked OpenMetrics syntax")
	}
}

func TestJournalFind(t *testing.T) {
	j := NewJournal(3, time.Hour)
	for _, id := range []string{"a", "b", "c", "d"} { // "a" wraps away
		j.Add(TraceRecord{ID: id})
	}
	if _, ok := j.Find("d"); !ok {
		t.Fatal("Find(d) missed")
	}
	if _, ok := j.Find("b"); !ok {
		t.Fatal("Find(b) missed")
	}
	if _, ok := j.Find("nope"); ok {
		t.Fatal("Find(nope) hit")
	}
	// "a" left the ring but survives in the pinned-slowest set when it
	// was slow enough.
	slow := NewJournal(2, time.Millisecond)
	slow.Add(TraceRecord{ID: "slowest", DurationNS: int64(time.Second)})
	slow.Add(TraceRecord{ID: "x"})
	slow.Add(TraceRecord{ID: "y"})
	slow.Add(TraceRecord{ID: "z"})
	if tr, ok := slow.Find("slowest"); !ok || !tr.Slow {
		t.Fatalf("pinned slowest not findable: %+v %v", tr, ok)
	}
	var nilJ *Journal
	if _, ok := nilJ.Find("a"); ok {
		t.Fatal("nil journal Find hit")
	}
}

func TestOnCompleteHook(t *testing.T) {
	reg := NewRegistry()
	mw := NewHTTPMetrics(reg, nil)
	journal := NewJournal(8, time.Hour)
	mw.EnableTracing(journal)
	var got RequestSample
	mw.OnComplete(func(s RequestSample) { got = s })

	h := mw.Wrap("/thing/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Maras-Stale", "1")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("hello"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/thing/42", nil))

	if got.RequestID == "" || got.Route != "/thing/" || got.Status != http.StatusTeapot {
		t.Fatalf("sample = %+v", got)
	}
	if got.Bytes != 5 || !got.Stale || got.Gzip {
		t.Fatalf("body dims wrong: %+v", got)
	}
	if got.Trace == nil || got.Trace.ID != got.RequestID {
		t.Fatalf("trace not attached: %+v", got.Trace)
	}
	// The journal should hold the same trace under the same ID.
	if _, ok := journal.Find(got.RequestID); !ok {
		t.Fatal("trace not in journal")
	}
	// The latency histogram carries the request ID as an exemplar.
	var om strings.Builder
	reg.WriteOpenMetrics(&om)
	if !strings.Contains(om.String(), `trace_id="`+got.RequestID+`"`) {
		t.Fatal("latency histogram missing request exemplar")
	}
}

func TestOnCompleteWithoutTracing(t *testing.T) {
	mw := NewHTTPMetrics(NewRegistry(), nil)
	var got RequestSample
	mw.OnComplete(func(s RequestSample) { got = s })
	h := mw.Wrap("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if got.Trace != nil {
		t.Fatalf("tracing disabled but sample has trace: %+v", got.Trace)
	}
	if got.Status != http.StatusOK || got.Bytes != 2 {
		t.Fatalf("sample = %+v", got)
	}
}
