package obs

import (
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// gzipPool recycles gzip writers across responses; compression level
// BestSpeed because the payloads (metrics text, history JSON) are
// highly repetitive and the win is bandwidth, not ratio.
var gzipPool = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return zw
	},
}

// GzipHandler wraps next with negotiated gzip response encoding:
// clients sending Accept-Encoding: gzip get a compressed body with
// Content-Encoding set, everyone else gets the handler's bytes
// untouched. Meant for the text- and JSON-heavy operational endpoints
// (/metrics, /debug/traces, /api/history, /api/slo) whose payloads
// compress 10-20x. Responses that already carry a Content-Encoding
// and bodyless statuses (204/304) pass through uncompressed.
func GzipHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !acceptsGzip(r) {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Add("Vary", "Accept-Encoding")
		gw := &gzipResponseWriter{ResponseWriter: w}
		defer gw.Close()
		next.ServeHTTP(gw, r)
	})
}

// acceptsGzip reports whether the request negotiates gzip. A zero q
// weight is an explicit refusal; any other mention (including
// weightless lists like "gzip, deflate") accepts.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		q := strings.TrimSpace(params)
		if val, ok := strings.CutPrefix(q, "q="); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil && f <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// gzipResponseWriter defers the compress/no-compress decision to the
// first write, when the status and response headers are known.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw          *gzip.Writer
	status      int
	wroteHeader bool
	skip        bool // pass through uncompressed
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if g.wroteHeader {
		return
	}
	g.wroteHeader = true
	g.status = code
	// No body to compress, the handler already encoded it itself, or
	// the payload is an opaque binary download (profile artifacts)
	// whose Content-Length clients rely on.
	if code == http.StatusNoContent || code == http.StatusNotModified ||
		g.Header().Get("Content-Encoding") != "" ||
		strings.HasPrefix(g.Header().Get("Content-Type"), "application/octet-stream") {
		g.skip = true
		g.ResponseWriter.WriteHeader(code)
		return
	}
	g.Header().Set("Content-Encoding", "gzip")
	// The compressed length is unknowable up front.
	g.Header().Del("Content-Length")
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.skip {
		return g.ResponseWriter.Write(p)
	}
	if g.zw == nil {
		g.zw = gzipPool.Get().(*gzip.Writer)
		g.zw.Reset(g.ResponseWriter)
	}
	return g.zw.Write(p)
}

// Flush drains the compressor and passes http.Flusher through so
// streaming handlers keep working under compression.
func (g *gzipResponseWriter) Flush() {
	if g.zw != nil {
		g.zw.Flush()
	}
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Close finishes the gzip stream and returns the writer to the pool.
func (g *gzipResponseWriter) Close() {
	if g.zw == nil {
		return
	}
	g.zw.Close()
	g.zw.Reset(nil)
	gzipPool.Put(g.zw)
	g.zw = nil
}
