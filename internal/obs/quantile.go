package obs

// Bucket-interpolation math shared by the SLO engine and the history
// views: both answer "what is the p99 over this window" and "what
// fraction of requests breached the latency target" from the same
// cumulative-bucket histogram deltas, so the interpolation lives here
// once instead of being duplicated per consumer.

// BucketQuantile estimates the q-quantile (0 < q <= 1) of a classic
// cumulative-bucket histogram by linear interpolation inside the
// bucket the quantile falls in. bounds are the finite upper bounds in
// ascending order; cum the cumulative counts aligned with them; total
// the full observation count including the +Inf bucket. Observations
// landing in +Inf clamp to the highest finite bound (the histogram
// carries no shape information beyond it). ok is false when there are
// no observations, no finite buckets, or q is out of range.
func BucketQuantile(q float64, bounds []float64, cum []int64, total int64) (v float64, ok bool) {
	if total <= 0 || len(bounds) == 0 || len(cum) != len(bounds) || q <= 0 || q > 1 {
		return 0, false
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			lower := 0.0
			var below int64
			if i > 0 {
				lower = bounds[i-1]
				below = cum[i-1]
			}
			in := c - below
			if in <= 0 {
				return bounds[i], true
			}
			frac := (rank - float64(below)) / float64(in)
			return lower + (bounds[i]-lower)*frac, true
		}
	}
	// The quantile falls in the +Inf bucket: clamp.
	return bounds[len(bounds)-1], true
}

// BucketFractionOver estimates the fraction of observations strictly
// above threshold, interpolating within the bucket containing it.
// Observations in the +Inf bucket always count as over; a threshold
// at or beyond the highest finite bound therefore returns exactly the
// +Inf share. ok is false when there are no observations or no
// finite buckets.
func BucketFractionOver(threshold float64, bounds []float64, cum []int64, total int64) (frac float64, ok bool) {
	if total <= 0 || len(bounds) == 0 || len(cum) != len(bounds) {
		return 0, false
	}
	if threshold < 0 {
		return 1, true
	}
	last := len(bounds) - 1
	if threshold >= bounds[last] {
		return float64(total-cum[last]) / float64(total), true
	}
	for i, bound := range bounds {
		if threshold < bound {
			lower := 0.0
			var below int64
			if i > 0 {
				lower = bounds[i-1]
				below = cum[i-1]
			}
			in := float64(cum[i] - below)
			share := 0.0
			if bound > lower {
				share = (threshold - lower) / (bound - lower)
			}
			under := float64(below) + in*share
			return (float64(total) - under) / float64(total), true
		}
	}
	return 0, true // unreachable: threshold < bounds[last] found a bucket
}
