package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestTracerRecordsStagesInOrder(t *testing.T) {
	tr := NewTracer(nil)
	for _, name := range []string{"clean", "encode", "mine"} {
		st := tr.StartStage(name)
		st.Count("items", 3)
		st.Count("items", 4)
		st.End()
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	wantNames := []string{"clean", "encode", "mine"}
	for i, r := range recs {
		if r.Name != wantNames[i] {
			t.Errorf("record %d name = %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Seq != i+1 {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Counters["items"] != 7 {
			t.Errorf("record %d items = %d, want 7 (Count must accumulate)", i, r.Counters["items"])
		}
		if r.DurationNS < 0 {
			t.Errorf("record %d negative duration", i)
		}
	}
}

func TestTracerAllocAttribution(t *testing.T) {
	tr := NewTracer(nil)
	st := tr.StartStage("alloc-heavy")
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	st.End()
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].AllocBytes < 64*4096/2 {
		t.Errorf("alloc_bytes = %d, want a substantial fraction of the %d bytes allocated",
			recs[0].AllocBytes, 64*4096)
	}
}

func TestNilTracerSafeAndRecordsNil(t *testing.T) {
	var tr *Tracer
	st := tr.StartStage("x")
	st.Count("c", 1)
	st.End()
	if recs := tr.Records(); recs != nil {
		t.Errorf("nil tracer records = %v, want nil", recs)
	}
	tr.Reset() // must not panic
}

// The pipeline threads the tracer unconditionally, so the disabled
// path must be allocation-free.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		st := tr.StartStage("stage")
		st.Count("counter", 42)
		st.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkNilTracerStage(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := tr.StartStage("stage")
		st.Count("counter", 1)
		st.End()
	}
}

func BenchmarkLiveTracerStage(b *testing.B) {
	tr := NewTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := tr.StartStage("stage")
		st.Count("counter", 1)
		st.End()
	}
	if n := len(tr.Records()); n != b.N {
		b.Fatalf("recorded %d stages, want %d", n, b.N)
	}
}

func TestTracerWriteJSONRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	st := tr.StartStage("mine")
	st.Count("frequent_itemsets", 123)
	st.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []StageRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(recs) != 1 || recs[0].Name != "mine" || recs[0].Counters["frequent_itemsets"] != 123 {
		t.Errorf("round trip mismatch: %+v", recs)
	}
}

func TestTracerLogsStagesAtDebug(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := NewTracer(logger)
	st := tr.StartStage("rank")
	st.Count("clusters_ranked", 9)
	st.End()
	out := buf.String()
	for _, want := range []string{"pipeline stage", "stage=rank", "clusters_ranked=9"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("stage log missing %q in %q", want, out)
		}
	}
}

func TestTracerResetAndTotalDuration(t *testing.T) {
	tr := NewTracer(nil)
	tr.StartStage("a").End()
	tr.StartStage("b").End()
	if tot := tr.TotalDuration(); tot < 0 {
		t.Errorf("total duration negative: %v", tot)
	}
	tr.Reset()
	if n := len(tr.Records()); n != 0 {
		t.Errorf("after reset: %d records", n)
	}
	tr.StartStage("c").End()
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Errorf("post-reset records wrong: %+v", recs)
	}
}
