package obs

import (
	"bufio"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", Label{"route", "/"})
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("requests_total", "Requests.", Label{"route", "/"}); again != c {
		t.Error("same name+labels must return the same counter")
	}
	if other := r.Counter("requests_total", "Requests.", Label{"route", "/x"}); other == c {
		t.Error("different labels must return a different series")
	}
	g := r.Gauge("inflight", "In flight.")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge after Set = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-55.65) > 1e-9 {
		t.Errorf("sum = %v, want 55.65", h.Sum())
	}
	cum, total := h.snapshot()
	// le semantics: 0.05 and 0.1 fall in the 0.1 bucket.
	want := []int64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum bucket %d = %d, want %d", i, cum[i], w)
		}
	}
	if total != 5 {
		t.Errorf("+Inf total = %d, want 5", total)
	}
}

// promLine matches a Prometheus exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)

// parsePrometheus validates the exposition text line by line and
// returns sample name → value for unlabeled access plus the full
// line set.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	var lastType string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 && strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("malformed TYPE line: %q", line)
			}
			if strings.HasPrefix(line, "# TYPE ") {
				lastType = fields[3]
				switch lastType {
				case "counter", "gauge", "histogram":
				default:
					t.Errorf("unknown TYPE %q in %q", lastType, line)
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line: %q", line)
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		sp := strings.LastIndex(line, " ")
		name := line[:sp]
		valStr := line[sp+1:]
		var v float64
		if valStr == "+Inf" {
			v = math.Inf(1)
		} else {
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Errorf("bad value in %q: %v", line, err)
				continue
			}
			v = f
		}
		samples[name] = v
	}
	return samples
}

func TestWritePrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "HTTP requests.", Label{"route", "/signal/"}, Label{"code", "2xx"}).Add(42)
	r.Gauge("http_inflight_requests", "In flight.").Set(2)
	h := r.Histogram("http_request_duration_seconds", "Latency.", []float64{0.01, 0.1, 1}, Label{"route", "/"})
	h.Observe(0.005)
	h.Observe(0.5)

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	samples := parsePrometheus(t, text)

	if v := samples[`http_requests_total{route="/signal/",code="2xx"}`]; v != 42 {
		t.Errorf("requests_total = %v, want 42 (text:\n%s)", v, text)
	}
	if v := samples[`http_request_duration_seconds_count{route="/"}`]; v != 2 {
		t.Errorf("histogram count = %v, want 2", v)
	}
	if v := samples[`http_request_duration_seconds_bucket{route="/",le="+Inf"}`]; v != 2 {
		t.Errorf("+Inf bucket = %v, want 2", v)
	}
	if v := samples[`http_request_duration_seconds_bucket{route="/",le="0.01"}`]; v != 1 {
		t.Errorf("0.01 bucket = %v, want 1", v)
	}
	for _, want := range []string{
		"# HELP http_requests_total HTTP requests.",
		"# TYPE http_requests_total counter",
		"# TYPE http_inflight_requests gauge",
		"# TYPE http_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing metadata line %q", want)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "Weird.", Label{"q", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `weird_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped line %q missing in:\n%s", want, b.String())
	}
	// And it must still parse.
	parsePrometheus(t, b.String())
}

func TestWriteRuntimePrometheus(t *testing.T) {
	var b strings.Builder
	WriteRuntimePrometheus(&b)
	samples := parsePrometheus(t, b.String())
	if samples["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", samples["go_goroutines"])
	}
	if samples["go_cpus"] < 1 {
		t.Errorf("go_cpus = %v, want >= 1", samples["go_cpus"])
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", Label{"k", "v"}).Add(3)
	h := r.Histogram("h_seconds", "H.", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	cFam, ok := snap["c_total"].(map[string]any)
	if !ok {
		t.Fatalf("c_total family missing: %v", snap)
	}
	if cFam[`k="v"`] != int64(3) {
		t.Errorf("counter snapshot = %v", cFam)
	}
	hFam := snap["h_seconds"].(map[string]any)
	hv := hFam[""].(map[string]any)
	if hv["count"] != int64(1) {
		t.Errorf("histogram snapshot = %v", hv)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics") // second call must not panic
}

// TestPrometheusHostileLabelValues drives the full hostile-value
// matrix through the renderer: backslashes, quotes, and newlines in
// label values must escape per the exposition format, and values that
// only differ in separator characters must stay distinct series.
func TestPrometheusHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	hostile := []string{
		`back\slash`,
		`quo"te`,
		"new\nline",
		`trailing\`,
		"\\\"\n", // all three at once
	}
	for _, v := range hostile {
		r.Counter("hostile_total", "Hostile.", Label{"v", v}).Inc()
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`hostile_total{v="back\\slash"} 1`,
		`hostile_total{v="quo\"te"} 1`,
		`hostile_total{v="new\nline"} 1`,
		`hostile_total{v="trailing\\"} 1`,
		`hostile_total{v="\\\"\n"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("escaped series %q missing in:\n%s", want, text)
		}
	}
	// Raw control characters must never reach the wire inside a value.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "hostile_total") && strings.Contains(line, "\t") {
			t.Errorf("unescaped control char in %q", line)
		}
	}
	parsePrometheus(t, text)
}

// TestLabelValueSeparatorCollision pins the series-identity fix:
// values crafted so their naive "k=v,k=v" concatenations coincide
// must still be separate counters.
func TestLabelValueSeparatorCollision(t *testing.T) {
	r := NewRegistry()
	// Naively joined, both become a=1,b=2 (the first smuggles the
	// separator inside the value).
	c1 := r.Counter("collide_total", "C.", Label{"a", "1,b=2"})
	c2 := r.Counter("collide_total", "C.", Label{"a", "1"}, Label{"b", "2"})
	c1.Add(7)
	if got := c2.Value(); got != 0 {
		t.Fatalf("separator collision: distinct label sets share a counter (%d)", got)
	}
	c2.Add(5)
	if c1.Value() != 7 || c2.Value() != 5 {
		t.Errorf("counters entangled: %d %d", c1.Value(), c2.Value())
	}
}

// TestPrometheusHelpEscaping: HELP text carrying backslashes or
// newlines must escape, or the exposition format breaks on the next
// line.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("helpful_total", "Line one\nline two with \\ backslash.").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	want := `# HELP helpful_total Line one\nline two with \\ backslash.`
	if !strings.Contains(text, want) {
		t.Errorf("escaped HELP missing:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "line two") {
			t.Errorf("raw newline split the HELP comment: %q", line)
		}
	}
	parsePrometheus(t, text)
}
