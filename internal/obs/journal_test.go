package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// mkTrace builds a minimal completed trace record for journal tests.
func mkTrace(id string, dur time.Duration) TraceRecord {
	return TraceRecord{
		ID:         id,
		Name:       "GET /",
		Start:      time.Now(),
		DurationNS: int64(dur),
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "GET /", DurationNS: int64(dur)},
		},
	}
}

func TestJournalRingEvictsOldest(t *testing.T) {
	j := NewJournal(3, time.Hour)
	for i := 1; i <= 5; i++ {
		j.Add(mkTrace(fmt.Sprintf("t%d", i), time.Duration(i)*time.Millisecond))
	}
	recent := j.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("recent = %d traces, want capacity 3", len(recent))
	}
	// Newest first: t5, t4, t3; t1 and t2 evicted.
	for i, want := range []string{"t5", "t4", "t3"} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %q, want %q", i, recent[i].ID, want)
		}
	}
	if st := j.Stats(); st.Total != 5 || st.Capacity != 3 {
		t.Errorf("stats = %+v", st)
	}
	if got := j.Recent(2); len(got) != 2 || got[0].ID != "t5" {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestJournalSlowestOrderAndFlag(t *testing.T) {
	j := NewJournal(8, 10*time.Millisecond)
	if slow := j.Add(mkTrace("fast", time.Millisecond)); slow {
		t.Error("1ms flagged slow against a 10ms threshold")
	}
	if slow := j.Add(mkTrace("slow1", 20*time.Millisecond)); !slow {
		t.Error("20ms not flagged slow")
	}
	j.Add(mkTrace("slow2", 50*time.Millisecond))
	// Exactly at threshold counts as slow.
	if slow := j.Add(mkTrace("edge", 10*time.Millisecond)); !slow {
		t.Error("threshold-equal trace not flagged slow")
	}

	slowest := j.Slowest(0)
	if len(slowest) != 4 {
		t.Fatalf("slowest holds %d, want 4", len(slowest))
	}
	for i, want := range []string{"slow2", "slow1", "edge", "fast"} {
		if slowest[i].ID != want {
			t.Errorf("slowest[%d] = %q, want %q", i, slowest[i].ID, want)
		}
	}
	if !slowest[0].Slow || slowest[3].Slow {
		t.Errorf("slow flags wrong: %v %v", slowest[0].Slow, slowest[3].Slow)
	}
	if st := j.Stats(); st.Slow != 3 {
		t.Errorf("slow total = %d, want 3", st.Slow)
	}
}

func TestJournalSlowestBounded(t *testing.T) {
	j := NewJournal(4, time.Hour) // tiny ring must not limit the pinned set
	for i := 0; i < slowestKept+10; i++ {
		j.Add(mkTrace(fmt.Sprintf("t%d", i), time.Duration(i+1)*time.Millisecond))
	}
	slowest := j.Slowest(0)
	if len(slowest) != slowestKept {
		t.Fatalf("pinned %d, want %d", len(slowest), slowestKept)
	}
	// Descending by duration, and the very slowest survived ring churn.
	for i := 1; i < len(slowest); i++ {
		if slowest[i].DurationNS > slowest[i-1].DurationNS {
			t.Fatalf("slowest not sorted at %d", i)
		}
	}
	if want := fmt.Sprintf("t%d", slowestKept+9); slowest[0].ID != want {
		t.Errorf("slowest[0] = %q, want %q", slowest[0].ID, want)
	}
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	if slow := j.Add(mkTrace("x", time.Hour)); slow {
		t.Error("nil journal flagged slow")
	}
	if j.Recent(5) != nil || j.Slowest(5) != nil {
		t.Error("nil journal returned traces")
	}
	if st := j.Stats(); st.Total != 0 {
		t.Errorf("nil journal stats = %+v", st)
	}
	if j.SlowThreshold() != 0 {
		t.Error("nil journal threshold nonzero")
	}
}

func TestJournalDefaults(t *testing.T) {
	j := NewJournal(0, 0)
	st := j.Stats()
	if st.Capacity != DefaultJournalCapacity || st.SlowThreshold != DefaultSlowThreshold {
		t.Errorf("defaults not applied: %+v", st)
	}
}

func TestTracesHandlerText(t *testing.T) {
	j := NewJournal(8, 10*time.Millisecond)
	rec := mkTrace("abc123", 20*time.Millisecond)
	rec.Spans = append(rec.Spans, SpanRecord{
		ID: 1, Parent: 0, Name: "store_load", DurationNS: int64(15 * time.Millisecond),
		Attrs: map[string]string{"cache": "lru_miss", "quarter": "2014Q1"},
	})
	j.Add(rec)

	w := httptest.NewRecorder()
	TracesHandler(j).ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"trace journal: 1 traces (1 slow",
		"trace abc123 GET / 20ms SLOW",
		"store_load 15ms {cache=lru_miss quarter=2014Q1}",
		"== slowest",
		"== recent",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("text output missing %q:\n%s", want, body)
		}
	}
	// The child line is indented one level deeper than the root line.
	if !strings.Contains(body, "\n    store_load") {
		t.Errorf("child span not indented:\n%s", body)
	}
}

func TestTracesHandlerJSON(t *testing.T) {
	j := NewJournal(8, time.Hour)
	j.Add(mkTrace("j1", time.Millisecond))
	j.Add(mkTrace("j2", 2*time.Millisecond))

	w := httptest.NewRecorder()
	TracesHandler(j).ServeHTTP(w,
		httptest.NewRequest(http.MethodGet, "/debug/traces?format=json&n=1", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var out struct {
		Stats   JournalStats  `json:"stats"`
		Slowest []TraceRecord `json:"slowest"`
		Recent  []TraceRecord `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if out.Stats.Total != 2 {
		t.Errorf("stats.total = %d", out.Stats.Total)
	}
	if len(out.Recent) != 1 || out.Recent[0].ID != "j2" {
		t.Errorf("?n=1 recent = %+v", out.Recent)
	}
	if len(out.Slowest) != 1 || out.Slowest[0].ID != "j2" {
		t.Errorf("?n=1 slowest = %+v", out.Slowest)
	}
}

func TestTracesHandlerNilJournal404(t *testing.T) {
	w := httptest.NewRecorder()
	TracesHandler(nil).ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	if !strings.Contains(w.Body.String(), "disabled") {
		t.Errorf("404 body should explain: %q", w.Body.String())
	}
}
