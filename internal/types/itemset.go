package types

import (
	"sort"
	"strconv"
	"strings"
)

// Itemset is a set of items represented as a strictly increasing
// slice. Every constructor in this package guarantees the invariant;
// code that builds itemsets by hand must call Normalize (or keep the
// ordering itself) before passing them on.
type Itemset []Item

// NewItemset copies items into a normalized (sorted, deduplicated)
// itemset.
func NewItemset(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	return s.Normalize()
}

// Normalize sorts s in place and removes duplicates, returning the
// (possibly shortened) normalized set.
func (s Itemset) Normalize() Itemset {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// IsNormalized reports whether s is strictly increasing.
func (s Itemset) IsNormalized() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	out := make(Itemset, len(s))
	copy(out, s)
	return out
}

// Contains reports whether s contains it. O(log n).
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// ContainsAll reports whether sub ⊆ s. Both must be normalized. O(n).
func (s Itemset) ContainsAll(sub Itemset) bool {
	if len(sub) > len(s) {
		return false
	}
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// ProperSupersetOf reports whether s ⊃ other.
func (s Itemset) ProperSupersetOf(other Itemset) bool {
	return len(s) > len(other) && s.ContainsAll(other)
}

// Equal reports whether s and other hold exactly the same items.
func (s Itemset) Equal(other Itemset) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ other as a new normalized itemset.
func (s Itemset) Union(other Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns s ∩ other as a new normalized itemset.
func (s Itemset) Intersect(other Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ other as a new normalized itemset.
func (s Itemset) Minus(other Itemset) Itemset {
	var out Itemset
	j := 0
	for _, it := range s {
		for j < len(other) && other[j] < it {
			j++
		}
		if j < len(other) && other[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// Without returns s with it removed (a copy; s is untouched).
func (s Itemset) Without(it Item) Itemset {
	out := make(Itemset, 0, len(s))
	for _, x := range s {
		if x != it {
			out = append(out, x)
		}
	}
	return out
}

// Key returns a canonical string key for s, suitable for map keys.
// Two itemsets have equal keys iff they are Equal.
func (s Itemset) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(len(s) * 6)
	for i, it := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(it)))
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a hash of the itemset contents.
func (s Itemset) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, it := range s {
		v := uint32(it)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(v >> shift))
			h *= prime64
		}
	}
	return h
}

// String renders the raw item IDs, mainly for tests and debugging;
// production output goes through Dictionary.Names.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = strconv.Itoa(int(it))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// ProperSubsets calls fn with every proper non-empty subset of s,
// reusing a single scratch buffer (fn must copy if it retains the
// slice). Subsets are emitted in ascending bitmask order of s's
// positions. It is intended for the small antecedents (≤ ~12 items)
// that occur in contextual-rule enumeration; larger sets are refused
// to avoid 2^n blowups hiding in callers.
func (s Itemset) ProperSubsets(fn func(Itemset) bool) {
	n := len(s)
	if n == 0 {
		return
	}
	if n > 20 {
		panic("types: ProperSubsets on itemset larger than 20 items")
	}
	scratch := make(Itemset, 0, n)
	full := uint32(1)<<uint(n) - 1
	for mask := uint32(1); mask < full; mask++ {
		scratch = scratch[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				scratch = append(scratch, s[i])
			}
		}
		if !fn(scratch) {
			return
		}
	}
}

// SubsetsOfSize calls fn with every subset of s having exactly k
// items, reusing a scratch buffer as in ProperSubsets.
func (s Itemset) SubsetsOfSize(k int, fn func(Itemset) bool) {
	n := len(s)
	if k <= 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	scratch := make(Itemset, k)
	for {
		for i, j := range idx {
			scratch[i] = s[j]
		}
		if !fn(scratch) {
			return
		}
		// Advance the combination indices.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
