// Package types defines the core value types shared by every MARAS
// subsystem: integer-encoded items, item domains (drug vs adverse
// reaction), the string↔ID dictionary, and sorted-itemset operations.
//
// All mining code operates on compact int32 item IDs. The Dictionary
// is the single translation point back to drug names and reaction
// (ADR) terms. Itemsets are represented as strictly increasing []Item
// slices, which makes subset tests, unions, intersections, and hashing
// cheap and allocation-predictable.
package types

import "fmt"

// Item is a dictionary-encoded item identifier. An Item refers either
// to a drug or to an adverse reaction term, as recorded by the
// Dictionary that issued it.
type Item int32

// NoItem is the zero sentinel; valid items issued by a Dictionary are
// always >= 0.
const NoItem Item = -1

// Domain classifies an item as a drug or an adverse drug reaction.
// MARAS rules always have drug-only antecedents and reaction-only
// consequents (Section 3.1 of the paper).
type Domain uint8

const (
	// DomainDrug marks medication items (rule antecedents).
	DomainDrug Domain = iota
	// DomainReaction marks adverse-reaction items (rule consequents).
	DomainReaction
)

// String returns a human-readable domain name.
func (d Domain) String() string {
	switch d {
	case DomainDrug:
		return "drug"
	case DomainReaction:
		return "reaction"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}
