package types

import (
	"fmt"
	"sort"
)

// Dictionary maps drug and reaction strings to compact Item IDs and
// back. IDs are issued densely starting at 0, in first-seen order, so
// they can index slices directly. A Dictionary is not safe for
// concurrent mutation; build it single-threaded (ingest is sequential
// anyway), then share it read-only.
type Dictionary struct {
	byName  map[string]Item
	names   []string
	domains []Domain
	nDrug   int
	nReac   int
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]Item)}
}

// Intern returns the Item for name within dom, issuing a fresh ID on
// first sight. Interning the same name under two different domains is
// a caller bug and panics: FAERS drug and reaction vocabularies are
// disjoint by construction (Idrug ∩ Iade ≡ ∅, Section 3.1), and
// silently merging them would corrupt every rule downstream.
func (d *Dictionary) Intern(name string, dom Domain) Item {
	if it, ok := d.byName[name]; ok {
		if d.domains[it] != dom {
			panic(fmt.Sprintf("types: %q interned as both %v and %v", name, d.domains[it], dom))
		}
		return it
	}
	it := Item(len(d.names))
	d.byName[name] = it
	d.names = append(d.names, name)
	d.domains = append(d.domains, dom)
	if dom == DomainDrug {
		d.nDrug++
	} else {
		d.nReac++
	}
	return it
}

// Lookup returns the Item for name, or NoItem if it was never interned.
func (d *Dictionary) Lookup(name string) Item {
	if it, ok := d.byName[name]; ok {
		return it
	}
	return NoItem
}

// Name returns the string for it. It panics on an ID the dictionary
// never issued.
func (d *Dictionary) Name(it Item) string { return d.names[it] }

// Domain returns the domain recorded for it.
func (d *Dictionary) Domain(it Item) Domain { return d.domains[it] }

// IsDrug reports whether it is a drug item.
func (d *Dictionary) IsDrug(it Item) bool { return d.domains[it] == DomainDrug }

// IsReaction reports whether it is a reaction item.
func (d *Dictionary) IsReaction(it Item) bool { return d.domains[it] == DomainReaction }

// Len returns the total number of interned items.
func (d *Dictionary) Len() int { return len(d.names) }

// DrugCount returns the number of distinct drug items.
func (d *Dictionary) DrugCount() int { return d.nDrug }

// ReactionCount returns the number of distinct reaction items.
func (d *Dictionary) ReactionCount() int { return d.nReac }

// Names translates an itemset into its string names, preserving order.
func (d *Dictionary) Names(set Itemset) []string {
	out := make([]string, len(set))
	for i, it := range set {
		out[i] = d.names[it]
	}
	return out
}

// SortedNames translates an itemset into alphabetically sorted names,
// the stable presentation order used in reports and visuals.
func (d *Dictionary) SortedNames(set Itemset) []string {
	out := d.Names(set)
	sort.Strings(out)
	return out
}

// SplitDomains partitions set into its drug items and reaction items,
// each preserving the set's ID order.
func (d *Dictionary) SplitDomains(set Itemset) (drugs, reactions Itemset) {
	for _, it := range set {
		if d.IsDrug(it) {
			drugs = append(drugs, it)
		} else {
			reactions = append(reactions, it)
		}
	}
	return drugs, reactions
}
