package types

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func set(items ...Item) Itemset { return NewItemset(items...) }

func TestNewItemsetNormalizes(t *testing.T) {
	cases := []struct {
		in   []Item
		want Itemset
	}{
		{nil, Itemset{}},
		{[]Item{5}, Itemset{5}},
		{[]Item{3, 1, 2}, Itemset{1, 2, 3}},
		{[]Item{4, 4, 4}, Itemset{4}},
		{[]Item{9, 1, 9, 1, 5}, Itemset{1, 5, 9}},
	}
	for _, c := range cases {
		got := NewItemset(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("NewItemset(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.IsNormalized() {
			t.Errorf("NewItemset(%v) not normalized: %v", c.in, got)
		}
	}
}

func TestContains(t *testing.T) {
	s := set(2, 4, 6, 8)
	for _, it := range []Item{2, 4, 6, 8} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false, want true", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7, 9, 100} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true, want false", it)
		}
	}
	if Itemset(nil).Contains(1) {
		t.Error("empty set Contains(1) = true")
	}
}

func TestContainsAll(t *testing.T) {
	s := set(1, 3, 5, 7)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{set(), true},
		{set(1), true},
		{set(7), true},
		{set(3, 7), true},
		{set(1, 3, 5, 7), true},
		{set(2), false},
		{set(1, 2), false},
		{set(1, 3, 5, 7, 9), false},
		{set(0, 1), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("%v.ContainsAll(%v) = %v, want %v", s, c.sub, got, c.want)
		}
	}
}

func TestProperSupersetOf(t *testing.T) {
	if !set(1, 2, 3).ProperSupersetOf(set(1, 3)) {
		t.Error("{1,2,3} should be proper superset of {1,3}")
	}
	if set(1, 2, 3).ProperSupersetOf(set(1, 2, 3)) {
		t.Error("a set is not a proper superset of itself")
	}
	if set(1, 2).ProperSupersetOf(set(1, 3)) {
		t.Error("{1,2} is not a superset of {1,3}")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := set(1, 2, 3, 5)
	b := set(2, 4, 5, 6)
	if got := a.Union(b); !got.Equal(set(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(set(2, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(set(1, 3)) {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(set(4, 6)) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Without(2); !got.Equal(set(1, 3, 5)) {
		t.Errorf("Without = %v", got)
	}
	if got := a.Without(99); !got.Equal(a) {
		t.Errorf("Without(absent) = %v", got)
	}
}

func TestUnionEmpty(t *testing.T) {
	a := set(1, 2)
	if got := a.Union(nil); !got.Equal(a) {
		t.Errorf("Union(nil) = %v", got)
	}
	if got := Itemset(nil).Union(a); !got.Equal(a) {
		t.Errorf("nil.Union = %v", got)
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := set(1, 23)
	b := set(12, 3)
	if a.Key() == b.Key() {
		t.Errorf("keys collide: %q vs %q", a.Key(), b.Key())
	}
	if set(1, 2).Key() != set(2, 1).Key() {
		t.Error("keys should be order-independent after normalization")
	}
}

func TestProperSubsets(t *testing.T) {
	s := set(1, 2, 3)
	var got []string
	s.ProperSubsets(func(sub Itemset) bool {
		got = append(got, sub.Clone().Key())
		return true
	})
	want := []string{"1", "2", "1,2", "3", "1,3", "2,3"}
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ProperSubsets = %v, want %v", got, want)
	}
}

func TestProperSubsetsEarlyStop(t *testing.T) {
	s := set(1, 2, 3, 4)
	n := 0
	s.ProperSubsets(func(Itemset) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d subsets, want 3", n)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	s := set(1, 2, 3, 4)
	counts := map[int]int{}
	for k := 0; k <= 5; k++ {
		n := 0
		s.SubsetsOfSize(k, func(sub Itemset) bool {
			if len(sub) != k {
				t.Fatalf("subset %v has size %d, want %d", sub, len(sub), k)
			}
			if !s.ContainsAll(sub) {
				t.Fatalf("subset %v not contained in %v", sub, s)
			}
			n++
			return true
		})
		counts[k] = n
	}
	want := map[int]int{0: 0, 1: 4, 2: 6, 3: 4, 4: 1, 5: 0}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("subset counts = %v, want %v", counts, want)
	}
}

func TestSubsetsOfSizeDistinct(t *testing.T) {
	s := set(10, 20, 30, 40, 50)
	seen := map[string]bool{}
	s.SubsetsOfSize(3, func(sub Itemset) bool {
		k := sub.Key()
		if seen[k] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 10 {
		t.Errorf("C(5,3) = %d subsets, want 10", len(seen))
	}
}

// Property: union/intersect/minus agree with a map-based model.
func TestSetAlgebraQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := fromBytes(xs)
		b := fromBytes(ys)
		ma, mb := toMap(a), toMap(b)

		u := a.Union(b)
		i := a.Intersect(b)
		d := a.Minus(b)

		wantU := map[Item]bool{}
		for k := range ma {
			wantU[k] = true
		}
		for k := range mb {
			wantU[k] = true
		}
		wantI := map[Item]bool{}
		wantD := map[Item]bool{}
		for k := range ma {
			if mb[k] {
				wantI[k] = true
			} else {
				wantD[k] = true
			}
		}
		return u.IsNormalized() && i.IsNormalized() && d.IsNormalized() &&
			sameSet(u, wantU) && sameSet(i, wantI) && sameSet(d, wantD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ProperSubsets emits exactly 2^n - 2 distinct proper subsets.
func TestProperSubsetsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item(i * 3)
		}
		s := NewItemset(items...)
		seen := map[string]bool{}
		s.ProperSubsets(func(sub Itemset) bool {
			if !s.ProperSupersetOf(sub) {
				t.Fatalf("%v emitted non-proper subset %v", s, sub)
			}
			seen[sub.Key()] = true
			return true
		})
		want := (1 << uint(n)) - 2
		if len(seen) != want {
			t.Fatalf("n=%d: %d subsets, want %d", n, len(seen), want)
		}
	}
}

// Property: ContainsAll(sub) matches map-model subset check.
func TestContainsAllQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := fromBytes(xs)
		b := fromBytes(ys)
		ma, mb := toMap(a), toMap(b)
		model := true
		for k := range mb {
			if !ma[k] {
				model = false
				break
			}
		}
		return a.ContainsAll(b) == model
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func fromBytes(xs []uint8) Itemset {
	items := make([]Item, len(xs))
	for i, x := range xs {
		items[i] = Item(x % 32) // force collisions so intersections are non-trivial
	}
	return NewItemset(items...)
}

func toMap(s Itemset) map[Item]bool {
	m := make(map[Item]bool, len(s))
	for _, it := range s {
		m[it] = true
	}
	return m
}

func sameSet(s Itemset, m map[Item]bool) bool {
	if len(s) != len(m) {
		return false
	}
	for _, it := range s {
		if !m[it] {
			return false
		}
	}
	return true
}
