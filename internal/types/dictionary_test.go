package types

import (
	"reflect"
	"testing"
)

func TestDictionaryInternRoundTrip(t *testing.T) {
	d := NewDictionary()
	asp := d.Intern("ASPIRIN", DomainDrug)
	war := d.Intern("WARFARIN", DomainDrug)
	bleed := d.Intern("Haemorrhage", DomainReaction)

	if asp == war || asp == bleed || war == bleed {
		t.Fatalf("IDs not distinct: %d %d %d", asp, war, bleed)
	}
	if d.Name(asp) != "ASPIRIN" || d.Name(bleed) != "Haemorrhage" {
		t.Errorf("Name round trip failed: %q %q", d.Name(asp), d.Name(bleed))
	}
	if got := d.Intern("ASPIRIN", DomainDrug); got != asp {
		t.Errorf("re-Intern issued new ID %d, want %d", got, asp)
	}
	if d.Len() != 3 || d.DrugCount() != 2 || d.ReactionCount() != 1 {
		t.Errorf("counts = %d/%d/%d, want 3/2/1", d.Len(), d.DrugCount(), d.ReactionCount())
	}
}

func TestDictionaryLookupMissing(t *testing.T) {
	d := NewDictionary()
	if got := d.Lookup("nope"); got != NoItem {
		t.Errorf("Lookup(missing) = %d, want NoItem", got)
	}
}

func TestDictionaryDomainClashPanics(t *testing.T) {
	d := NewDictionary()
	d.Intern("X", DomainDrug)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cross-domain Intern")
		}
	}()
	d.Intern("X", DomainReaction)
}

func TestDictionaryDomainPredicates(t *testing.T) {
	d := NewDictionary()
	drug := d.Intern("PROGRAF", DomainDrug)
	reac := d.Intern("Drug Ineffective", DomainReaction)
	if !d.IsDrug(drug) || d.IsReaction(drug) {
		t.Error("drug item misclassified")
	}
	if !d.IsReaction(reac) || d.IsDrug(reac) {
		t.Error("reaction item misclassified")
	}
	if d.Domain(drug) != DomainDrug || d.Domain(reac) != DomainReaction {
		t.Error("Domain() wrong")
	}
}

func TestDictionarySplitDomains(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("A", DomainDrug)
	r1 := d.Intern("r1", DomainReaction)
	b := d.Intern("B", DomainDrug)
	r2 := d.Intern("r2", DomainReaction)

	full := NewItemset(a, r1, b, r2)
	drugs, reacs := d.SplitDomains(full)
	if !drugs.Equal(NewItemset(a, b)) {
		t.Errorf("drugs = %v", drugs)
	}
	if !reacs.Equal(NewItemset(r1, r2)) {
		t.Errorf("reactions = %v", reacs)
	}
}

func TestDictionaryNames(t *testing.T) {
	d := NewDictionary()
	z := d.Intern("ZOMETA", DomainDrug)
	p := d.Intern("PRILOSEC", DomainDrug)
	got := d.Names(NewItemset(z, p))
	if !reflect.DeepEqual(got, []string{"ZOMETA", "PRILOSEC"}) {
		t.Errorf("Names = %v", got)
	}
	sorted := d.SortedNames(NewItemset(z, p))
	if !reflect.DeepEqual(sorted, []string{"PRILOSEC", "ZOMETA"}) {
		t.Errorf("SortedNames = %v", sorted)
	}
}

func TestDomainString(t *testing.T) {
	if DomainDrug.String() != "drug" || DomainReaction.String() != "reaction" {
		t.Error("Domain.String wrong")
	}
	if Domain(9).String() == "" {
		t.Error("unknown domain should still render")
	}
}
