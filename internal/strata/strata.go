// Package strata profiles the demographics behind a signal: the sex
// and age distribution of the supporting reports compared against the
// full report population, with a chi-square screen for whether the
// signal concentrates in a stratum. Section 4.1 motivates exactly
// this drill-down — after MARAS surfaces a plausible interaction,
// "they need to be further investigated in order to [find] the
// relevant factors causing the interaction, such as patient's age,
// health history etc."
package strata

import (
	"fmt"
	"sort"
	"strconv"

	"maras/internal/faers"
)

// AgeBand buckets patient ages the way safety reviews tabulate them.
type AgeBand string

const (
	AgeChild   AgeBand = "0-17"
	AgeAdult   AgeBand = "18-44"
	AgeMiddle  AgeBand = "45-64"
	AgeSenior  AgeBand = "65+"
	AgeUnknown AgeBand = "unknown"
)

// ageBandOf converts a FAERS age string (with its unit code) to a band.
func ageBandOf(age, code string) AgeBand {
	if age == "" {
		return AgeUnknown
	}
	v, err := strconv.ParseFloat(age, 64)
	if err != nil || v < 0 {
		return AgeUnknown
	}
	years := v
	switch code {
	case "MON":
		years = v / 12
	case "WK":
		years = v / 52
	case "DY":
		years = v / 365
	case "DEC":
		years = v * 10
	case "", "YR":
		// already years
	default:
		return AgeUnknown
	}
	switch {
	case years < 18:
		return AgeChild
	case years < 45:
		return AgeAdult
	case years < 65:
		return AgeMiddle
	default:
		return AgeSenior
	}
}

// normalizeSex collapses the FAERS sex codes to F/M/unknown.
func normalizeSex(s string) string {
	switch s {
	case "F", "M":
		return s
	default:
		return "unknown"
	}
}

// Distribution counts reports per stratum value.
type Distribution map[string]int

// Total returns the distribution's total count.
func (d Distribution) Total() int {
	n := 0
	for _, c := range d {
		n += c
	}
	return n
}

// Share returns the fraction of the total held by value.
func (d Distribution) Share(value string) float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d[value]) / float64(t)
}

// Keys returns the stratum values sorted for deterministic output.
func (d Distribution) Keys() []string {
	out := make([]string, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Profile is the demographic comparison of a signal's supporting
// reports against the background population.
type Profile struct {
	// SexSignal/SexBackground count reports by sex.
	SexSignal     Distribution
	SexBackground Distribution
	// AgeSignal/AgeBackground count reports by age band.
	AgeSignal     Distribution
	AgeBackground Distribution
	// SexChiSquare / AgeChiSquare test whether the signal's
	// distribution differs from the background (df = strata−1;
	// "unknown" strata are excluded from the statistic).
	SexChiSquare float64
	AgeChiSquare float64
}

// Enriched reports strata whose share among supporting reports
// exceeds the background share by at least delta (absolute), sorted
// by excess — the "who is affected" summary line.
func (p *Profile) Enriched(delta float64) []string {
	type excess struct {
		label string
		by    float64
	}
	var out []excess
	collect := func(sig, bg Distribution, kind string) {
		for _, k := range sig.Keys() {
			if k == "unknown" {
				continue
			}
			e := sig.Share(k) - bg.Share(k)
			if e >= delta {
				out = append(out, excess{fmt.Sprintf("%s %s (+%.0f%%)", kind, k, e*100), e})
			}
		}
	}
	collect(p.SexSignal, p.SexBackground, "sex")
	collect(p.AgeSignal, p.AgeBackground, "age")
	sort.Slice(out, func(i, j int) bool { return out[i].by > out[j].by })
	labels := make([]string, len(out))
	for i, e := range out {
		labels[i] = e.label
	}
	return labels
}

// Build computes the profile of the reports named by supportingIDs
// within the full report set. Unknown IDs are ignored.
func Build(all []faers.Report, supportingIDs []string) Profile {
	inSignal := make(map[string]bool, len(supportingIDs))
	for _, id := range supportingIDs {
		inSignal[id] = true
	}
	p := Profile{
		SexSignal: Distribution{}, SexBackground: Distribution{},
		AgeSignal: Distribution{}, AgeBackground: Distribution{},
	}
	for i := range all {
		r := &all[i]
		sex := normalizeSex(r.Sex)
		age := string(ageBandOf(r.Age, r.AgeCode))
		p.SexBackground[sex]++
		p.AgeBackground[age]++
		if inSignal[r.PrimaryID] {
			p.SexSignal[sex]++
			p.AgeSignal[age]++
		}
	}
	p.SexChiSquare = chiSquare(p.SexSignal, p.SexBackground)
	p.AgeChiSquare = chiSquare(p.AgeSignal, p.AgeBackground)
	return p
}

// chiSquare computes Σ (obs − exp)² / exp where exp scales the
// background distribution to the signal's total, over known strata.
func chiSquare(sig, bg Distribution) float64 {
	sigTotal, bgTotal := 0, 0
	for k, c := range sig {
		if k != "unknown" {
			sigTotal += c
		}
	}
	for k, c := range bg {
		if k != "unknown" {
			bgTotal += c
		}
	}
	if sigTotal == 0 || bgTotal == 0 {
		return 0
	}
	chi := 0.0
	for k, bc := range bg {
		if k == "unknown" {
			continue
		}
		exp := float64(bc) / float64(bgTotal) * float64(sigTotal)
		if exp == 0 {
			continue
		}
		d := float64(sig[k]) - exp
		chi += d * d / exp
	}
	return chi
}
