package strata

import (
	"fmt"
	"strings"
	"testing"

	"maras/internal/faers"
)

func TestAgeBandOf(t *testing.T) {
	cases := []struct {
		age, code string
		want      AgeBand
	}{
		{"5", "YR", AgeChild},
		{"17", "YR", AgeChild},
		{"18", "YR", AgeAdult},
		{"44", "YR", AgeAdult},
		{"45", "YR", AgeMiddle},
		{"64", "YR", AgeMiddle},
		{"65", "YR", AgeSenior},
		{"90", "YR", AgeSenior},
		{"6", "MON", AgeChild},
		{"100", "WK", AgeChild},
		{"300", "DY", AgeChild},
		{"7", "DEC", AgeSenior},
		{"54", "", AgeMiddle},
		{"", "YR", AgeUnknown},
		{"abc", "YR", AgeUnknown},
		{"-3", "YR", AgeUnknown},
		{"40", "LY", AgeUnknown}, // unknown unit
	}
	for _, c := range cases {
		if got := ageBandOf(c.age, c.code); got != c.want {
			t.Errorf("ageBandOf(%q,%q) = %q, want %q", c.age, c.code, got, c.want)
		}
	}
}

func TestNormalizeSex(t *testing.T) {
	if normalizeSex("F") != "F" || normalizeSex("M") != "M" {
		t.Error("F/M mangled")
	}
	for _, s := range []string{"UNK", "", "X"} {
		if normalizeSex(s) != "unknown" {
			t.Errorf("normalizeSex(%q) = %q", s, normalizeSex(s))
		}
	}
}

func TestDistribution(t *testing.T) {
	d := Distribution{"F": 30, "M": 10}
	if d.Total() != 40 {
		t.Errorf("Total = %d", d.Total())
	}
	if d.Share("F") != 0.75 {
		t.Errorf("Share(F) = %v", d.Share("F"))
	}
	if got := d.Keys(); len(got) != 2 || got[0] != "F" {
		t.Errorf("Keys = %v", got)
	}
	if (Distribution{}).Share("F") != 0 {
		t.Error("empty Share should be 0")
	}
}

// buildCorpus: background 50/50 F/M mixed ages; signal reports all
// senior women.
func buildCorpus() ([]faers.Report, []string) {
	var all []faers.Report
	var signalIDs []string
	for i := 0; i < 200; i++ {
		sex := "F"
		if i%2 == 0 {
			sex = "M"
		}
		age := fmt.Sprint(20 + (i % 60))
		all = append(all, faers.Report{
			PrimaryID: fmt.Sprintf("bg%d", i), Sex: sex, Age: age, AgeCode: "YR",
		})
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("sig%d", i)
		all = append(all, faers.Report{
			PrimaryID: id, Sex: "F", Age: "72", AgeCode: "YR",
		})
		signalIDs = append(signalIDs, id)
	}
	return all, signalIDs
}

func TestBuildProfile(t *testing.T) {
	all, ids := buildCorpus()
	p := Build(all, ids)
	if p.SexSignal["F"] != 30 || p.SexSignal["M"] != 0 {
		t.Errorf("sex signal = %v", p.SexSignal)
	}
	if p.AgeSignal[string(AgeSenior)] != 30 {
		t.Errorf("age signal = %v", p.AgeSignal)
	}
	if p.SexBackground.Total() != 230 {
		t.Errorf("sex background total = %d", p.SexBackground.Total())
	}
	// A strongly skewed signal must have large chi-square values.
	if p.SexChiSquare < 10 {
		t.Errorf("sex chi² = %v, want large", p.SexChiSquare)
	}
	if p.AgeChiSquare < 10 {
		t.Errorf("age chi² = %v, want large", p.AgeChiSquare)
	}
}

func TestBuildUnskewedProfile(t *testing.T) {
	var all []faers.Report
	var ids []string
	for i := 0; i < 400; i++ {
		sex := "F"
		if i%2 == 0 {
			sex = "M"
		}
		id := fmt.Sprintf("r%d", i)
		all = append(all, faers.Report{PrimaryID: id, Sex: sex, Age: fmt.Sprint(20 + i%60), AgeCode: "YR"})
		if i%3 == 0 { // every 3rd report supports the signal; i%3
			// alternates parity, so sexes stay balanced
			ids = append(ids, id)
		}
	}
	p := Build(all, ids)
	if p.SexChiSquare > 4 {
		t.Errorf("unbiased signal sex chi² = %v, want small", p.SexChiSquare)
	}
	if len(p.Enriched(0.15)) != 0 {
		t.Errorf("unbiased signal enriched = %v", p.Enriched(0.15))
	}
}

func TestEnriched(t *testing.T) {
	all, ids := buildCorpus()
	p := Build(all, ids)
	enriched := p.Enriched(0.2)
	if len(enriched) == 0 {
		t.Fatal("skewed signal shows no enrichment")
	}
	joined := strings.Join(enriched, " | ")
	if !strings.Contains(joined, "sex F") {
		t.Errorf("female enrichment missing: %v", enriched)
	}
	if !strings.Contains(joined, "age 65+") {
		t.Errorf("senior enrichment missing: %v", enriched)
	}
	// Strongest excess first.
	if len(enriched) >= 2 && !strings.HasPrefix(enriched[0], "age 65+") {
		// age excess (~95pp) should beat sex excess (~48pp)
		t.Errorf("enrichment order = %v", enriched)
	}
}

func TestBuildIgnoresUnknownIDs(t *testing.T) {
	all, _ := buildCorpus()
	p := Build(all, []string{"nope"})
	if p.SexSignal.Total() != 0 {
		t.Errorf("unknown ID counted: %v", p.SexSignal)
	}
	if p.SexChiSquare != 0 {
		t.Errorf("empty signal chi² = %v", p.SexChiSquare)
	}
}

func TestUnknownStrataExcludedFromChi(t *testing.T) {
	var all []faers.Report
	var ids []string
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("u%d", i)
		all = append(all, faers.Report{PrimaryID: id, Sex: "UNK"})
		ids = append(ids, id)
	}
	p := Build(all, ids)
	if p.SexChiSquare != 0 {
		t.Errorf("all-unknown chi² = %v, want 0", p.SexChiSquare)
	}
}
