package txdb

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/types"
)

// buildTiny builds the worked example from Section 3.3 of the paper:
// drugs d1,d2 and reactions a1,a2 in one report, plus reports that
// implicitly support some sub-associations.
func buildTiny(t *testing.T) (*DB, map[string]types.Item) {
	t.Helper()
	dict := types.NewDictionary()
	items := map[string]types.Item{}
	for _, d := range []string{"d1", "d2", "d5", "d6"} {
		items[d] = dict.Intern(d, types.DomainDrug)
	}
	for _, a := range []string{"a1", "a2", "a3", "a7"} {
		items[a] = dict.Intern(a, types.DomainReaction)
	}
	db := New(dict)
	db.Add("r1", types.NewItemset(items["d1"], items["d2"], items["a1"], items["a2"]))
	db.Add("r2", types.NewItemset(items["d1"], items["d5"], items["d6"], items["a2"], items["a3"], items["a7"]))
	db.Add("r3", types.NewItemset(items["d1"], items["a2"]))
	db.Freeze()
	return db, items
}

func TestSupportBasics(t *testing.T) {
	db, items := buildTiny(t)
	cases := []struct {
		set  types.Itemset
		want int
	}{
		{types.NewItemset(), 3},
		{types.NewItemset(items["d1"]), 3},
		{types.NewItemset(items["d2"]), 1},
		{types.NewItemset(items["a2"]), 3},
		{types.NewItemset(items["d1"], items["a2"]), 3},
		{types.NewItemset(items["d1"], items["d2"]), 1},
		{types.NewItemset(items["d1"], items["d2"], items["a1"], items["a2"]), 1},
		{types.NewItemset(items["d2"], items["d5"]), 0},
		{types.NewItemset(items["d5"], items["a3"]), 1},
	}
	for _, c := range cases {
		if got := db.Support(c.set); got != c.want {
			t.Errorf("Support(%v) = %d, want %d", c.set, got, c.want)
		}
	}
}

func TestSupportMissingItem(t *testing.T) {
	db, items := buildTiny(t)
	ghost := types.Item(10_000)
	if got := db.Support(types.NewItemset(items["d1"], ghost)); got != 0 {
		t.Errorf("Support with never-seen item = %d, want 0", got)
	}
}

func TestTIDsExact(t *testing.T) {
	db, items := buildTiny(t)
	tids := db.TIDs(types.NewItemset(items["d1"], items["a2"]), nil)
	want := []TID{0, 1, 2}
	if len(tids) != len(want) {
		t.Fatalf("TIDs = %v, want %v", tids, want)
	}
	for i := range want {
		if tids[i] != want[i] {
			t.Fatalf("TIDs = %v, want %v", tids, want)
		}
	}
}

func TestTIDsBufferReuse(t *testing.T) {
	db, items := buildTiny(t)
	buf := make([]TID, 0, 8)
	a := db.TIDs(types.NewItemset(items["d1"]), buf)
	b := db.TIDs(types.NewItemset(items["d2"]), a)
	if len(b) != 1 || b[0] != 0 {
		t.Errorf("reused-buffer TIDs = %v, want [0]", b)
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	db, items := buildTiny(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Add after Freeze")
		}
	}()
	db.Add("late", types.NewItemset(items["d1"]))
}

func TestStats(t *testing.T) {
	db, _ := buildTiny(t)
	s := db.Stats()
	if s.Reports != 3 {
		t.Errorf("Reports = %d, want 3", s.Reports)
	}
	if s.Drugs != 4 {
		t.Errorf("Drugs = %d, want 4", s.Drugs)
	}
	if s.Reactions != 4 {
		t.Errorf("Reactions = %d, want 4", s.Reactions)
	}
	// 2 + 3 + 1 = 6 drug mentions over 3 reports.
	if got := s.AvgDrugs; got < 1.99 || got > 2.01 {
		t.Errorf("AvgDrugs = %v, want 2.0", got)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestTransactionReportID(t *testing.T) {
	db, _ := buildTiny(t)
	if got := db.Tx(1).ReportID; got != "r2" {
		t.Errorf("Tx(1).ReportID = %q, want r2", got)
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
}

// Property: Support via posting lists agrees with a brute-force scan,
// across random databases.
func TestSupportMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		dict := types.NewDictionary()
		nItems := 12
		items := make([]types.Item, nItems)
		for i := range items {
			dom := types.DomainDrug
			if i >= nItems/2 {
				dom = types.DomainReaction
			}
			items[i] = dict.Intern(fmt.Sprintf("i%d", i), dom)
		}
		db := New(dict)
		n := 30 + rng.Intn(60)
		for r := 0; r < n; r++ {
			var tx types.Itemset
			for _, it := range items {
				if rng.Float64() < 0.3 {
					tx = append(tx, it)
				}
			}
			db.Add(fmt.Sprintf("r%d", r), tx.Normalize())
		}
		db.Freeze()

		for q := 0; q < 40; q++ {
			var query types.Itemset
			for _, it := range items {
				if rng.Float64() < 0.25 {
					query = append(query, it)
				}
			}
			query = query.Normalize()
			want := 0
			for _, tx := range db.Transactions() {
				if tx.Items.ContainsAll(query) {
					want++
				}
			}
			if got := db.Support(query); got != want {
				t.Fatalf("trial %d: Support(%v) = %d, brute force %d", trial, query, got, want)
			}
		}
	}
}

func TestGallop(t *testing.T) {
	l := []TID{2, 4, 8, 16, 32, 64, 128}
	cases := []struct {
		start int
		v     TID
		want  int
	}{
		{0, 1, 0},
		{0, 2, 0},
		{0, 3, 1},
		{0, 64, 5},
		{0, 65, 6},
		{0, 128, 6},
		{0, 129, 7},
		{3, 16, 3},
		{3, 200, 7},
		{7, 5, 7}, // start past end
	}
	for _, c := range cases {
		if got := gallop(l, c.start, c.v); got != c.want {
			t.Errorf("gallop(start=%d, v=%d) = %d, want %d", c.start, c.v, got, c.want)
		}
	}
}
