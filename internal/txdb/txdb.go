// Package txdb holds the transaction database the miners run against:
// one transaction per cleaned adverse-event report, each the union of
// the report's drug items and reaction items. Alongside the horizontal
// layout it maintains per-item posting lists (sorted transaction-ID
// lists), which give exact support counts for arbitrary itemsets by
// k-way intersection — the primitive that contextual-rule scoring
// (package mcac/rank) relies on.
package txdb

import (
	"fmt"
	"sort"

	"maras/internal/types"
)

// TID identifies a transaction (a report) within one DB, densely from 0.
type TID int32

// Transaction is one report abstracted to its itemset. Items is always
// normalized (sorted strictly increasing).
type Transaction struct {
	// ReportID is the originating report's external identifier
	// (FAERS primaryid); it lets signals link back to raw reports.
	ReportID string
	Items    types.Itemset
}

// DB is an immutable-after-Freeze transaction database.
type DB struct {
	dict     *types.Dictionary
	txs      []Transaction
	postings map[types.Item][]TID
	frozen   bool
}

// New returns an empty DB over dict.
func New(dict *types.Dictionary) *DB {
	return &DB{dict: dict, postings: make(map[types.Item][]TID)}
}

// Dict returns the dictionary the DB encodes against.
func (db *DB) Dict() *types.Dictionary { return db.dict }

// Add appends a transaction. The itemset is normalized defensively.
// Add panics after Freeze: the posting lists are shared read-only by
// then and appending would silently corrupt support counts.
func (db *DB) Add(reportID string, items types.Itemset) TID {
	if db.frozen {
		panic("txdb: Add after Freeze")
	}
	items = items.Clone().Normalize()
	tid := TID(len(db.txs))
	db.txs = append(db.txs, Transaction{ReportID: reportID, Items: items})
	for _, it := range items {
		db.postings[it] = append(db.postings[it], tid)
	}
	return tid
}

// Freeze marks the DB read-only. Posting lists are already sorted by
// construction (TIDs are appended in increasing order).
func (db *DB) Freeze() { db.frozen = true }

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.txs) }

// Tx returns the transaction with the given ID.
func (db *DB) Tx(tid TID) Transaction { return db.txs[tid] }

// Transactions returns the backing slice; callers must not mutate it.
func (db *DB) Transactions() []Transaction { return db.txs }

// ItemSupport returns the number of transactions containing it.
func (db *DB) ItemSupport(it types.Item) int { return len(db.postings[it]) }

// Postings returns the sorted TID list for it; callers must not
// mutate it. Nil means the item never occurs.
func (db *DB) Postings(it types.Item) []TID { return db.postings[it] }

// Support returns |{t : set ⊆ t}|, the absolute support of set
// (Formula 2.1), computed exactly by intersecting posting lists,
// rarest-first. The empty set is contained in every transaction.
func (db *DB) Support(set types.Itemset) int {
	return len(db.TIDs(set, nil))
}

// TIDs returns the sorted transaction IDs containing every item of
// set, appended into buf (reset first) to let hot callers avoid
// allocation. For the empty set it returns all TIDs.
func (db *DB) TIDs(set types.Itemset, buf []TID) []TID {
	buf = buf[:0]
	if len(set) == 0 {
		for i := range db.txs {
			buf = append(buf, TID(i))
		}
		return buf
	}
	// Order lists shortest-first: intersection cost is bounded by the
	// smallest list, and galloping search exploits the size skew.
	lists := make([][]TID, len(set))
	for i, it := range set {
		p := db.postings[it]
		if len(p) == 0 {
			return buf
		}
		lists[i] = p
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	buf = append(buf, lists[0]...)
	for _, l := range lists[1:] {
		buf = intersectInto(buf, l)
		if len(buf) == 0 {
			return buf
		}
	}
	return buf
}

// intersectInto intersects acc (sorted) with l (sorted) in place,
// using galloping search over the longer list.
func intersectInto(acc []TID, l []TID) []TID {
	out := acc[:0]
	j := 0
	for _, v := range acc {
		// Gallop forward in l to the first element >= v.
		j = gallop(l, j, v)
		if j >= len(l) {
			break
		}
		if l[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

// gallop returns the smallest index i >= start with l[i] >= v, by
// exponential probing followed by binary search within the bracket.
func gallop(l []TID, start int, v TID) int {
	if start >= len(l) || l[start] >= v {
		return start
	}
	step := 1
	lo := start
	hi := start + step
	for hi < len(l) && l[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(l) {
		hi = len(l)
	}
	// Invariant: l[lo] < v, and (hi == len(l) or l[hi] >= v).
	return lo + 1 + sort.Search(hi-lo-1, func(i int) bool { return l[lo+1+i] >= v })
}

// Stats summarizes a DB the way Table 5.1 of the paper does.
type Stats struct {
	Reports   int // transactions
	Drugs     int // distinct drug items occurring at least once
	Reactions int // distinct reaction items occurring at least once
	AvgDrugs  float64
	AvgReacs  float64
}

// Stats scans the DB and reports Table 5.1-style dataset statistics.
func (db *DB) Stats() Stats {
	var s Stats
	s.Reports = len(db.txs)
	var totDrug, totReac int
	for it, p := range db.postings {
		if len(p) == 0 {
			continue
		}
		if db.dict.IsDrug(it) {
			s.Drugs++
			totDrug += len(p)
		} else {
			s.Reactions++
			totReac += len(p)
		}
	}
	if s.Reports > 0 {
		s.AvgDrugs = float64(totDrug) / float64(s.Reports)
		s.AvgReacs = float64(totReac) / float64(s.Reports)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("reports=%d drugs=%d reactions=%d avgDrugs=%.2f avgReacs=%.2f",
		s.Reports, s.Drugs, s.Reactions, s.AvgDrugs, s.AvgReacs)
}
