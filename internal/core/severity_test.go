package core

import (
	"fmt"
	"testing"

	"maras/internal/faers"
	"maras/internal/meddra"
)

func TestSeriousShare(t *testing.T) {
	var reports []faers.Report
	id := 0
	add := func(outcomes []string, drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", id), CaseID: fmt.Sprintf("c%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs, Outcomes: outcomes,
		})
	}
	// 10 interaction reports, 4 with severe outcomes.
	for i := 0; i < 10; i++ {
		var oc []string
		if i < 4 {
			oc = []string{"HO"}
		}
		add(oc, []string{"X", "Y"}, []string{"Bad"})
	}
	for i := 0; i < 15; i++ {
		add(nil, []string{"X"}, []string{"Meh"})
		add(nil, []string{"Y"}, []string{"Meh"})
	}
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sig *Signal
	for i := range a.Signals {
		if a.Signals[i].Key() == "X+Y" {
			sig = &a.Signals[i]
		}
	}
	if sig == nil {
		t.Fatal("X+Y signal missing")
	}
	if sig.SeriousShare < 0.39 || sig.SeriousShare > 0.41 {
		t.Errorf("SeriousShare = %v, want 0.4", sig.SeriousShare)
	}
	if got := a.SeriousSignals(0.3); len(got) == 0 {
		t.Error("SeriousSignals(0.3) should include X+Y")
	}
	if got := a.SeriousSignals(0.9); len(got) != 0 {
		t.Errorf("SeriousSignals(0.9) = %d signals, want 0", len(got))
	}
}

func TestSuspectOnlyNarrowsDrugs(t *testing.T) {
	var reports []faers.Report
	for i := 0; i < 8; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", i), CaseID: fmt.Sprintf("c%d", i), ReportCode: "EXP",
			Drugs:     []string{"SUSA", "SUSB", "CONC"},
			DrugRoles: []string{"PS", "SS", "C"},
			Reactions: []string{"Bad"},
		})
	}
	for i := 0; i < 12; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("a%d", i), CaseID: fmt.Sprintf("ca%d", i), ReportCode: "EXP",
			Drugs: []string{"SUSA"}, DrugRoles: []string{"PS"}, Reactions: []string{"Meh"},
		})
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("b%d", i), CaseID: fmt.Sprintf("cb%d", i), ReportCode: "EXP",
			Drugs: []string{"SUSB"}, DrugRoles: []string{"PS"}, Reactions: []string{"Meh"},
		})
	}
	opts := NewOptions()
	opts.MinSupport = 3
	opts.SuspectOnly = true
	a, err := Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Signals {
		for _, d := range s.Drugs {
			if d == "CONC" {
				t.Fatalf("concomitant drug leaked into signal %s", s.Key())
			}
		}
	}
	found := false
	for _, s := range a.Signals {
		if s.Key() == "SUSA+SUSB" {
			found = true
		}
	}
	if !found {
		t.Error("suspect pair signal missing")
	}
}

func TestSignalSOCs(t *testing.T) {
	var reports []faers.Report
	for i := 0; i < 6; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", i), CaseID: fmt.Sprintf("c%d", i), ReportCode: "EXP",
			Drugs: []string{"X", "Y"}, Reactions: []string{"Acute renal failure", "Rash"},
		})
	}
	for i := 0; i < 10; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("x%d", i), CaseID: fmt.Sprintf("cx%d", i), ReportCode: "EXP",
			Drugs: []string{"X"}, Reactions: []string{"Nausea"},
		})
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("y%d", i), CaseID: fmt.Sprintf("cy%d", i), ReportCode: "EXP",
			Drugs: []string{"Y"}, Reactions: []string{"Headache"},
		})
	}
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	top := a.Signals[0]
	if len(top.SOCs) != 2 {
		t.Fatalf("SOCs = %v, want renal + skin", top.SOCs)
	}
	renal := a.SignalsBySOC(meddra.SOCRenal)
	if len(renal) == 0 {
		t.Error("SignalsBySOC(renal) empty")
	}
	if got := a.SignalsBySOC(meddra.SOCCardiac); len(got) != 0 {
		t.Errorf("SignalsBySOC(cardiac) = %d, want 0", len(got))
	}
}
