package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"maras/internal/eval"
	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/rank"
	"maras/internal/synth"
)

// handReports builds a tiny corpus with one strong interaction
// (X+Y -> Bleeding) over background noise.
func handReports() []faers.Report {
	var out []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		out = append(out, faers.Report{
			PrimaryID:  fmt.Sprintf("%d", 1000+id),
			CaseID:     fmt.Sprintf("C%d", id),
			ReportCode: "EXP",
			Drugs:      drugs,
			Reactions:  reacs,
		})
	}
	for i := 0; i < 8; i++ {
		add([]string{"DRUGX", "DRUGY"}, []string{"Bleeding"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"DRUGX"}, []string{"Nausea"})
		add([]string{"DRUGY"}, []string{"Headache"})
	}
	// A dominated pair: DRUGU alone causes Rash as often as the pair.
	for i := 0; i < 8; i++ {
		add([]string{"DRUGU", "DRUGV"}, []string{"Rash"})
		add([]string{"DRUGU"}, []string{"Rash"})
	}
	// Background.
	for i := 0; i < 30; i++ {
		add([]string{fmt.Sprintf("BG%d", i%7)}, []string{"Dizziness"})
	}
	return out
}

func TestRunFindsPlantedInteraction(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	top := a.Signals[0]
	if top.Key() != "DRUGX+DRUGY" {
		t.Errorf("top signal = %s (score %.3f), want DRUGX+DRUGY", top.Key(), top.Score)
	}
	if top.Support != 8 {
		t.Errorf("top support = %d, want 8", top.Support)
	}
	if top.Confidence < 0.2 {
		t.Errorf("top confidence = %v", top.Confidence)
	}
	// The dominated pair must rank below the true interaction.
	xy := eval.RankOf(signalKeys(a.Signals), "DRUGX+DRUGY")
	uv := eval.RankOf(signalKeys(a.Signals), "DRUGU+DRUGV")
	if uv != 0 && uv < xy {
		t.Errorf("dominated pair ranked %d above true interaction %d", uv, xy)
	}
}

func signalKeys(sig []Signal) []string {
	out := make([]string, len(sig))
	for i := range sig {
		out[i] = sig[i].Key()
	}
	return out
}

func TestRunSignalFields(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range a.Signals {
		if s.Rank != i+1 {
			t.Errorf("rank %d at index %d", s.Rank, i)
		}
		if len(s.Drugs) < 2 {
			t.Errorf("signal %d has %d drugs", i, len(s.Drugs))
		}
		if len(s.ReportIDs) == 0 {
			t.Errorf("signal %d has no supporting reports", i)
		}
		if s.Cluster == nil {
			t.Errorf("signal %d lacks cluster", i)
		}
		if s.Support <= 0 {
			t.Errorf("signal %d support %d", i, s.Support)
		}
	}
}

func TestRunReportLinking(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	top := a.Signals[0]
	if len(top.ReportIDs) != top.Support {
		t.Errorf("report links %d != support %d", len(top.ReportIDs), top.Support)
	}
}

func TestRunCountsMonotone(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	opts.CountRules = true
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Counts
	if !(c.TotalRules >= c.FilteredRules && c.FilteredRules >= c.MCACs) {
		t.Errorf("rule reduction violated: total=%d filtered=%d mcacs=%d",
			c.TotalRules, c.FilteredRules, c.MCACs)
	}
	if c.MCACs == 0 {
		t.Error("no MCACs built")
	}
}

func TestRunExpeditedFilter(t *testing.T) {
	reports := handReports()
	// Flip half the background to PER.
	for i := range reports {
		if i%2 == 0 && len(reports[i].Drugs) == 1 {
			reports[i].ReportCode = "PER"
		}
	}
	withFilter, err := Run(reports, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions()
	opts.ExpeditedOnly = false
	without, err := Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withFilter.Stats.Reports >= without.Stats.Reports {
		t.Errorf("EXP filter did not reduce reports: %d vs %d",
			withFilter.Stats.Reports, without.Stats.Reports)
	}
}

func TestRunEmptyInput(t *testing.T) {
	if _, err := Run(nil, NewOptions()); err == nil {
		t.Error("empty input should error")
	}
}

func TestRunTopK(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 2
	opts.TopK = 1
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) != 1 {
		t.Errorf("TopK=1 returned %d signals", len(a.Signals))
	}
}

func TestFilterSignalsAndNovel(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hits := a.FilterSignals("DRUGX")
	if len(hits) == 0 {
		t.Error("FilterSignals(DRUGX) empty")
	}
	for _, s := range hits {
		found := false
		for _, d := range s.Drugs {
			if d == "DRUGX" {
				found = true
			}
		}
		if !found {
			t.Errorf("signal %s does not mention DRUGX", s.Key())
		}
	}
	if len(a.FilterSignals("NOSUCH")) != 0 {
		t.Error("FilterSignals(NOSUCH) non-empty")
	}
	// All the hand-made signals are novel (not in the builtin KB).
	if len(a.NovelSignals()) != len(a.Signals) {
		t.Error("hand-made signals should all be novel")
	}
}

// FilterSignals must match case-insensitively: drug names are stored
// upper-cased but reaction terms sentence-cased, and users type
// either in any case.
func TestFilterSignalsCaseInsensitive(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(a.FilterSignals("DRUGX"))
	if want == 0 {
		t.Fatal("fixture has no DRUGX signals")
	}
	for _, q := range []string{"drugx", "DrugX", "DRUGX"} {
		if got := len(a.FilterSignals(q)); got != want {
			t.Errorf("FilterSignals(%q) = %d signals, want %d", q, got, want)
		}
	}
	// Reaction terms too: find any reaction from the top signal and
	// query it in the wrong case.
	reac := a.Signals[0].Reactions[0]
	if got := a.FilterSignals(strings.ToUpper(reac)); len(got) == 0 {
		t.Errorf("FilterSignals(%q) found nothing", strings.ToUpper(reac))
	}
	if got := a.FilterSignals(strings.ToLower(reac)); len(got) == 0 {
		t.Errorf("FilterSignals(%q) found nothing", strings.ToLower(reac))
	}
}

func TestRunKnowledgeValidation(t *testing.T) {
	var reports []faers.Report
	for i := 0; i < 10; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", i), CaseID: fmt.Sprintf("c%d", i), ReportCode: "EXP",
			Drugs:     []string{"ASPIRIN", "WARFARIN"},
			Reactions: []string{"Haemorrhage"},
		})
	}
	for i := 0; i < 20; i++ {
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("a%d", i), CaseID: fmt.Sprintf("ca%d", i), ReportCode: "EXP",
			Drugs:     []string{"ASPIRIN"},
			Reactions: []string{"Nausea"},
		})
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("w%d", i), CaseID: fmt.Sprintf("cw%d", i), ReportCode: "EXP",
			Drugs:     []string{"WARFARIN"},
			Reactions: []string{"Dizziness"},
		})
	}
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	var hit *Signal
	for i := range a.Signals {
		if a.Signals[i].Key() == "ASPIRIN+WARFARIN" {
			hit = &a.Signals[i]
		}
	}
	if hit == nil {
		t.Fatal("aspirin+warfarin signal missing")
	}
	if hit.Known == nil {
		t.Fatal("knowledge-base validation missed a curated interaction")
	}
	if hit.Known.Severity != knowledge.Severe {
		t.Errorf("severity = %v", hit.Known.Severity)
	}
}

// End-to-end on synthetic data: planted interactions should be
// recoverable with decent precision.
func TestRunOnSyntheticQuarter(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic end-to-end in -short mode")
	}
	cfg := synth.DefaultConfig("2014Q1", 42)
	cfg.Reports = 8000
	cfg.DrugVocab = 800
	cfg.ReactionVocab = 300
	cfg.ExposureRate = 0.08
	q, gt, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions()
	opts.MinSupport = 8
	a, err := RunQuarter(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := eval.Score(signalKeys(a.Signals), gt.Keys())
	if res.RecallAt[50] < 0.3 {
		t.Errorf("recall@50 = %.2f, want >= 0.3 (found %d signals; first hit rank %d)",
			res.RecallAt[50], len(a.Signals), res.FirstHitRank)
	}
	if res.FirstHitRank == 0 || res.FirstHitRank > 10 {
		t.Errorf("first planted interaction at rank %d, want top-10", res.FirstHitRank)
	}
	// Exclusiveness must beat raw confidence at surfacing truth.
	optsConf := opts
	optsConf.Method = rank.ByConfidence
	ac, err := RunQuarter(q, optsConf)
	if err != nil {
		t.Fatal(err)
	}
	resConf := eval.Score(signalKeys(ac.Signals), gt.Keys())
	if res.MRR < resConf.MRR {
		t.Errorf("exclusiveness MRR %.3f below confidence MRR %.3f", res.MRR, resConf.MRR)
	}
}

// TestRunContextBridgesStageSpans: running under an active span turns
// every pipeline stage into a "stage:<name>" child span, even when the
// caller supplied no tracer of its own.
func TestRunContextBridgesStageSpans(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3

	tr := obs.NewTrace("mine")
	ctx, root := tr.StartRoot(context.Background(), "startup mine")
	a, err := RunContext(ctx, handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	root.End()

	rec := tr.Snapshot()
	got := map[string]obs.SpanRecord{}
	for _, s := range rec.Spans {
		got[s.Name] = s
	}
	rootID := got["startup mine"].ID
	for _, stage := range StageOrder() {
		s, ok := got["stage:"+stage]
		if !ok {
			t.Errorf("stage span stage:%s missing", stage)
			continue
		}
		if s.Parent != rootID {
			t.Errorf("stage:%s parented to %d, want root %d", stage, s.Parent, rootID)
		}
	}
	if s := got["stage:"+StageClean]; s.Attrs["alloc_bytes"] == "" {
		t.Errorf("stage span lost tracer attributes: %v", s.Attrs)
	}
}

// TestRunContextReusedTracerNoDoubleBridge: a caller-owned tracer that
// already holds records from a previous run must contribute only the
// new run's stages.
func TestRunContextReusedTracerNoDoubleBridge(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	opts.Tracer = obs.NewTracer(nil)

	// First run without a span: fills the tracer.
	if _, err := RunContext(context.Background(), handReports(), opts); err != nil {
		t.Fatal(err)
	}
	base := opts.Tracer.Len()
	if base == 0 {
		t.Fatal("tracer recorded nothing")
	}

	tr := obs.NewTrace("second")
	ctx, root := tr.StartRoot(context.Background(), "second run")
	if _, err := RunContext(ctx, handReports(), opts); err != nil {
		t.Fatal(err)
	}
	root.End()

	rec := tr.Snapshot()
	stageSpans := 0
	for _, s := range rec.Spans {
		if strings.HasPrefix(s.Name, "stage:") {
			stageSpans++
		}
	}
	if want := len(StageOrder()); stageSpans != want {
		t.Errorf("bridged %d stage spans, want %d (one run only)", stageSpans, want)
	}
}

// TestRunContextWithoutSpanIsPlainRun: no active span means no side
// effects — same results, no tracer forced onto the options.
func TestRunContextWithoutSpanIsPlainRun(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	a, err := RunContext(context.Background(), handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) != len(b.Signals) {
		t.Errorf("context run diverged: %d vs %d signals", len(a.Signals), len(b.Signals))
	}
}
