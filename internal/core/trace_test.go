package core

import (
	"testing"

	"maras/internal/obs"
	"maras/internal/synth"
)

// TestRunQuarterTraceStages runs the full pipeline on a small
// synthetic quarter with a tracer attached and checks the trace: the
// stage names appear in pipeline order and the stage counters agree
// with the analysis outputs.
func TestRunQuarterTraceStages(t *testing.T) {
	sc := synth.DefaultConfig("2014Q1", 7)
	sc.Reports = 600
	q, _, err := synth.Generate(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(nil)
	opts := NewOptions()
	opts.MinSupport = 3
	opts.Tracer = tr
	a, err := RunQuarter(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	recs := tr.Records()
	want := StageOrder()
	if len(recs) != len(want) {
		names := make([]string, len(recs))
		for i, r := range recs {
			names[i] = r.Name
		}
		t.Fatalf("got %d stages %v, want %d %v", len(recs), names, len(want), want)
	}
	byName := map[string]obs.StageRecord{}
	for i, r := range recs {
		if r.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, r.Name, want[i])
		}
		byName[r.Name] = r
	}

	// Counters must agree with the analysis.
	clean := byName[StageClean]
	if got := clean.Counters["reports_out"]; got != int64(a.Cleaning.ReportsOut) {
		t.Errorf("clean.reports_out = %d, want %d", got, a.Cleaning.ReportsOut)
	}
	if got := clean.Counters["duplicates_removed"]; got != int64(a.Cleaning.DuplicateReports) {
		t.Errorf("clean.duplicates_removed = %d, want %d", got, a.Cleaning.DuplicateReports)
	}
	encode := byName[StageEncode]
	if got := encode.Counters["transactions"]; got != int64(a.Stats.Reports) {
		t.Errorf("encode.transactions = %d, want Stats.Reports = %d", got, a.Stats.Reports)
	}
	mine := byName[StageMine]
	closure := byName[StageClosure]
	if mine.Counters["frequent_itemsets"] < closure.Counters["closed_itemsets"] {
		t.Errorf("frequent (%d) < closed (%d)",
			mine.Counters["frequent_itemsets"], closure.Counters["closed_itemsets"])
	}
	if got, want := closure.Counters["itemsets_dropped"],
		mine.Counters["frequent_itemsets"]-closure.Counters["closed_itemsets"]; got != want {
		t.Errorf("closure.itemsets_dropped = %d, want %d", got, want)
	}
	cluster := byName[StageCluster]
	if got := cluster.Counters["clusters_built"]; got != int64(a.Counts.MCACs) {
		t.Errorf("mcac_build.clusters_built = %d, want Counts.MCACs = %d", got, a.Counts.MCACs)
	}
	link := byName[StageLink]
	if got := link.Counters["signals"]; got != int64(len(a.Signals)) {
		t.Errorf("validate_link.signals = %d, want %d", got, len(a.Signals))
	}
	if link.Counters["known"]+link.Counters["novel"] != link.Counters["signals"] {
		t.Errorf("known (%d) + novel (%d) != signals (%d)",
			link.Counters["known"], link.Counters["novel"], link.Counters["signals"])
	}
	rankSt := byName[StageRank]
	if got := rankSt.Counters["signals_kept"]; got != int64(len(a.Signals)) {
		t.Errorf("rank.signals_kept = %d, want %d", got, len(a.Signals))
	}
}

// TestRunNilTracerUnchanged checks that running without a tracer
// produces the same analysis (the tracer is observe-only).
func TestRunNilTracerUnchanged(t *testing.T) {
	opts := NewOptions()
	opts.MinSupport = 3
	plain, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Tracer = obs.NewTracer(nil)
	traced, err := Run(handReports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Signals) != len(traced.Signals) {
		t.Fatalf("signal count changed under tracing: %d vs %d",
			len(plain.Signals), len(traced.Signals))
	}
	for i := range plain.Signals {
		if plain.Signals[i].Key() != traced.Signals[i].Key() ||
			plain.Signals[i].Score != traced.Signals[i].Score {
			t.Errorf("signal %d differs under tracing", i)
		}
	}
}

// BenchmarkNilTracerPipelineHooks guards the hot path: the stage
// hooks as threaded through the pipeline must be free when no tracer
// is configured.
func BenchmarkNilTracerPipelineHooks(b *testing.B) {
	var opts Options // Tracer nil, as in every untraced run
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := opts.Tracer.StartStage(StageMine)
		st.Count("frequent_itemsets", int64(i))
		st.End()
	}
}

func TestNilTracerHooksZeroAlloc(t *testing.T) {
	var opts Options
	allocs := testing.AllocsPerRun(200, func() {
		st := opts.Tracer.StartStage(StageMine)
		st.Count("frequent_itemsets", 1)
		st.End()
	})
	if allocs != 0 {
		t.Errorf("nil tracer pipeline hooks allocate %.1f per op, want 0", allocs)
	}
}
