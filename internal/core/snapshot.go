package core

import (
	"maras/internal/cleaning"
	"maras/internal/faers"
	"maras/internal/txdb"
	"maras/internal/types"
)

// This file holds the small export/rehydrate surface the snapshot
// store (package store) builds on. An Analysis is expensive to
// compute — cleaning, FP-Growth mining, cluster construction and
// ranking over a full FAERS quarter — but cheap to describe: its
// stats, its ranked signals (each carrying its full MCAC), the
// dictionary that gives item IDs meaning, and the raw reports the
// signals link back to. Rehydrate reassembles a servable Analysis
// from exactly those parts, so a quarter mined once can be served
// many times from disk without ever touching the miners again.

// RawReports returns the original (uncleaned) reports in input order
// — the population Demographics profiles against and the content the
// snapshot store persists for drill-down. Callers must not mutate the
// returned slice.
func (a *Analysis) RawReports() []faers.Report { return a.reportList }

// Rehydrate reassembles an Analysis from its persisted parts. The
// dictionary must be the one the signals' clusters were encoded
// against (item IDs are dense and order-defined, so re-interning the
// persisted names in ID order reproduces it exactly).
//
// A rehydrated Analysis serves every read path — Signals,
// FilterSignals, Report drill-down, Demographics, glyph rendering via
// the clusters — but carries no transaction database: DB() returns
// nil, and re-mining requires the raw quarter files. That is the
// point: serving a warm quarter does zero mining.
func Rehydrate(stats txdb.Stats, cstats cleaning.Stats, counts Counts,
	signals []Signal, dict *types.Dictionary, reports []faers.Report) *Analysis {
	byID := make(map[string]faers.Report, len(reports))
	for i := range reports {
		byID[reports[i].PrimaryID] = reports[i]
	}
	return &Analysis{
		Stats:      stats,
		Cleaning:   cstats,
		Counts:     counts,
		Signals:    signals,
		dict:       dict,
		reports:    byID,
		reportList: reports,
	}
}
