// Package core wires the MARAS pipeline end to end (Fig 1.1 and
// Section 5.2): report cleaning, transaction encoding, closed-itemset
// mining with FP-Growth, drug→ADR rule generation, multi-level
// contextual cluster construction, exclusiveness ranking, knowledge-
// base validation, and linking every signal back to the raw reports
// that support it.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"maras/internal/assoc"
	"maras/internal/cleaning"
	"maras/internal/faers"
	"maras/internal/fpgrowth"
	"maras/internal/knowledge"
	"maras/internal/mcac"
	"maras/internal/meddra"
	"maras/internal/obs"
	"maras/internal/obs/prof"
	"maras/internal/rank"
	"maras/internal/resilience"
	"maras/internal/strata"
	"maras/internal/txdb"
	"maras/internal/types"
)

// Pipeline stage names, in execution order, as they appear in a
// trace. Every stage also records domain counters (see the obs
// package and DESIGN.md "Observability").
const (
	StageClean   = "clean"          // expedited/suspect filters + cleaning
	StageEncode  = "encode"         // dictionary interning + transaction DB
	StageMine    = "mine"           // FP-Growth frequent itemsets
	StageClosure = "closure_filter" // closed-itemset filter (Lemma 3.4.2)
	StageRules   = "rule_gen"       // drug→ADR target rule generation
	StageCluster = "mcac_build"     // multi-level contextual clusters
	StageRank    = "rank"           // exclusiveness (or baseline) ranking
	StageLink    = "validate_link"  // knowledge validation + report linking
)

// StageOrder lists the trace stage names in pipeline order.
func StageOrder() []string {
	return []string{
		StageClean, StageEncode, StageMine, StageClosure,
		StageRules, StageCluster, StageRank, StageLink,
	}
}

// Options configures a pipeline run. NewOptions supplies the paper's
// defaults.
type Options struct {
	Cleaning cleaning.Options

	// ExpeditedOnly keeps only EXP reports, as the paper does.
	ExpeditedOnly bool

	// SuspectOnly narrows each report to its suspect drugs (role
	// codes PS/SS/I) before mining, the standard pharmacovigilance
	// restriction that drops concomitant-medication noise. Reports
	// without role data keep all their drugs.
	SuspectOnly bool

	// MinSupport is the absolute minimum support for mining; the
	// paper runs with a low threshold to catch rare combinations.
	MinSupport int
	// MaxItems caps mined itemset length (drugs+reactions) as a
	// safety valve against pathological reports.
	MaxItems int

	// MinDrugs / MaxDrugs bound the antecedent size of target rules.
	MinDrugs int
	MaxDrugs int

	// Method is the cluster ranking strategy.
	Method rank.Method
	// Theta is the exclusiveness CV penalty θ ∈ [0,1].
	Theta float64
	// Decay weights contextual levels; nil = linear (paper).
	Decay rank.Decay

	// TopK bounds the number of returned signals; 0 = all.
	TopK int

	// CountRules additionally sizes the unfiltered and filtered rule
	// spaces (Fig 5.1's Total and Filtered series). Off by default:
	// the total-rule count walks power sets of every frequent
	// itemset and exists only for the reduction experiment.
	CountRules bool

	// Knowledge is the validation base; nil = builtin.
	Knowledge *knowledge.Base

	// Tracer, when non-nil, records a per-stage trace of the run
	// (wall time, allocation volume, domain counters). A nil tracer
	// costs nothing on the hot path.
	Tracer *obs.Tracer
}

// NewOptions returns the paper-shaped defaults.
func NewOptions() Options {
	return Options{
		Cleaning:      cleaning.Defaults(),
		ExpeditedOnly: true,
		MinSupport:    4,
		MaxItems:      10,
		MinDrugs:      2,
		MaxDrugs:      5,
		Method:        rank.ByExclusivenessConf,
		Theta:         0.5,
		TopK:          100,
	}
}

// Signal is one ranked drug-drug-interaction candidate.
type Signal struct {
	Rank  int
	Score float64

	Drugs     []string // sorted drug names
	Reactions []string // sorted reaction terms

	Support     int
	Confidence  float64
	Lift        float64
	SupportType assoc.SupportType

	// Cluster is the full MCAC backing the signal (for glyphs and
	// drill-down).
	Cluster *mcac.Cluster

	// Known is the matching curated interaction, nil if the
	// combination is not in the knowledge base — i.e. a candidate
	// novel interaction.
	Known *knowledge.Interaction

	// SeriousShare is the fraction of supporting reports carrying a
	// severe outcome code (death, hospitalization, ...), the severity
	// criterion the interactive interface filters on.
	SeriousShare float64

	// SOCs are the MedDRA-style system organ classes of the signal's
	// reactions, deduplicated, for organ-system triage.
	SOCs []meddra.SOC

	// ReportIDs are the primary IDs of the reports containing all of
	// the signal's drugs and reactions (the raw-report link of
	// Section 4.1).
	ReportIDs []string
}

// Key returns the canonical drug-combination key of the signal.
func (s *Signal) Key() string { return knowledge.DrugKey(s.Drugs) }

// Counts tracks the rule-space reduction of Fig 5.1.
type Counts struct {
	TotalRules    int // classical ARM rule space: Σ(2^|U|−2) over frequent U
	FilteredRules int // drug→ADR rules from all frequent itemsets
	MCACs         int // closed multi-drug clusters scored
}

// Analysis is a completed pipeline run.
type Analysis struct {
	Stats    txdb.Stats
	Cleaning cleaning.Stats
	Counts   Counts
	Signals  []Signal

	db         *txdb.DB
	dict       *types.Dictionary
	reports    map[string]faers.Report // original reports by primary ID
	reportList []faers.Report          // original reports, input order
}

// Report returns the original (uncleaned) report with the given
// primary ID and whether it exists — the raw-report drill-down of
// Section 4.1 ("It is essential to analyze the original data reports
// submitted by patients").
func (a *Analysis) Report(primaryID string) (faers.Report, bool) {
	r, ok := a.reports[primaryID]
	return r, ok
}

// Demographics profiles the supporting reports of a signal against
// the whole population (sex and age-band distributions with
// chi-square screens) — the relevant-factors investigation Section
// 4.1 calls for.
func (a *Analysis) Demographics(s *Signal) strata.Profile {
	return strata.Build(a.reportList, s.ReportIDs)
}

// DB exposes the transaction database (read-only) for drill-down and
// visualization layers.
func (a *Analysis) DB() *txdb.DB { return a.db }

// Dict exposes the dictionary used to encode the reports.
func (a *Analysis) Dict() *types.Dictionary { return a.dict }

// EncodeReports runs the ingest half of the pipeline — expedited
// filtering, cleaning, and dictionary encoding into a frozen
// transaction database — so experiment harnesses can drive the mining
// layers directly.
func EncodeReports(reports []faers.Report, opts Options) (*txdb.DB, cleaning.Stats, error) {
	return encodeReports(context.Background(), reports, opts)
}

// encodeReports is EncodeReports with a context for pprof stage
// labels: CPU samples taken inside a stage carry stage=<name> (see
// internal/obs/prof), which is how the capture scheduler and
// maras-bench -exp prof attribute mining cycles per stage.
func encodeReports(ctx context.Context, reports []faers.Report, opts Options) (*txdb.DB, cleaning.Stats, error) {
	var (
		cleaned []faers.Report
		cstats  cleaning.Stats
	)
	st := opts.Tracer.StartStage(StageClean)
	prof.DoStage(ctx, StageClean, func() {
		if opts.ExpeditedOnly {
			reports = faers.FilterExpedited(reports)
		}
		if opts.SuspectOnly {
			narrowed := make([]faers.Report, len(reports))
			for i, r := range reports {
				n := r
				n.Drugs = r.SuspectDrugs()
				n.DrugRoles = nil // alignment is gone after narrowing
				narrowed[i] = n
			}
			reports = narrowed
		}
		cleaned, cstats = cleaning.Clean(reports, opts.Cleaning)
	})
	st.Count("reports_in", int64(cstats.ReportsIn))
	st.Count("reports_out", int64(cstats.ReportsOut))
	st.Count("duplicates_removed", int64(cstats.DuplicateReports))
	st.Count("spellings_fixed", int64(cstats.DrugSpellingsFixed+cstats.ReacSpellingsFixed))
	st.End()
	if len(cleaned) == 0 {
		return nil, cstats, fmt.Errorf("core: no usable reports after cleaning (in=%d)", cstats.ReportsIn)
	}
	st = opts.Tracer.StartStage(StageEncode)
	var (
		dict *types.Dictionary
		db   *txdb.DB
	)
	prof.DoStage(ctx, StageEncode, func() {
		dict = types.NewDictionary()
		db = txdb.New(dict)
		for _, r := range cleaned {
			items := make(types.Itemset, 0, len(r.Drugs)+len(r.Reactions))
			for _, d := range r.Drugs {
				items = append(items, dict.Intern(d, types.DomainDrug))
			}
			for _, a := range r.Reactions {
				items = append(items, dict.Intern(a, types.DomainReaction))
			}
			db.Add(r.PrimaryID, items)
		}
		db.Freeze()
	})
	st.Count("transactions", int64(db.Len()))
	st.Count("dictionary_items", int64(dict.Len()))
	st.End()
	return db, cstats, nil
}

// Run executes the full pipeline over raw reports.
func Run(reports []faers.Report, opts Options) (*Analysis, error) {
	return run(context.Background(), reports, opts)
}

// run is the pipeline body. Every stage executes under a pprof
// stage=<name> label so continuous-profiling captures can say which
// stage the cycles went to.
func run(ctx context.Context, reports []faers.Report, opts Options) (*Analysis, error) {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	if opts.MinDrugs < 2 {
		opts.MinDrugs = 2
	}
	if opts.Knowledge == nil {
		opts.Knowledge = knowledge.Builtin()
	}

	serious := make(map[string]bool)
	byID := make(map[string]faers.Report, len(reports))
	for i := range reports {
		byID[reports[i].PrimaryID] = reports[i]
		if reports[i].Serious() {
			serious[reports[i].PrimaryID] = true
		}
	}
	db, cstats, err := encodeReports(ctx, reports, opts)
	if err != nil {
		return nil, err
	}
	dict := db.Dict()

	// Mine: closed itemsets for the rule base; the full frequent set
	// only to size the unfiltered rule space (Fig 5.1 counts).
	st := opts.Tracer.StartStage(StageMine)
	mopts := fpgrowth.Options{MinSupport: opts.MinSupport, MaxLen: opts.MaxItems}
	var frequent []fpgrowth.FrequentSet
	prof.DoStage(ctx, StageMine, func() {
		frequent = fpgrowth.Mine(db, mopts)
	})
	st.Count("frequent_itemsets", int64(len(frequent)))
	st.End()

	st = opts.Tracer.StartStage(StageClosure)
	var closed []fpgrowth.FrequentSet
	prof.DoStage(ctx, StageClosure, func() {
		closed = fpgrowth.FilterClosed(frequent)
	})
	st.Count("closed_itemsets", int64(len(closed)))
	st.Count("itemsets_dropped", int64(len(frequent)-len(closed)))
	st.End()

	var counts Counts
	if opts.CountRules {
		counts.TotalRules = assoc.CountTraditionalRules(frequent)
		counts.FilteredRules = assoc.CountDrugADRRules(dict, frequent)
	}

	st = opts.Tracer.StartStage(StageRules)
	var targets []assoc.Rule
	prof.DoStage(ctx, StageRules, func() {
		targets = assoc.FromItemsets(db, closed, assoc.GenOptions{
			MinDrugs: opts.MinDrugs,
			MaxDrugs: opts.MaxDrugs,
		})
	})
	st.Count("rules_kept", int64(len(targets)))
	st.End()

	st = opts.Tracer.StartStage(StageCluster)
	var clusters []mcac.Cluster
	prof.DoStage(ctx, StageCluster, func() {
		clusters = mcac.BuildAll(db, targets)
	})
	counts.MCACs = len(clusters)
	st.Count("clusters_built", int64(len(clusters)))
	st.End()

	st = opts.Tracer.StartStage(StageRank)
	var ranked []rank.Ranked
	prof.DoStage(ctx, StageRank, func() {
		ranked = rank.Rank(clusters, opts.Method, rank.Options{Theta: opts.Theta, Decay: opts.Decay})
	})
	st.Count("clusters_ranked", int64(len(ranked)))
	if opts.TopK > 0 && len(ranked) > opts.TopK {
		ranked = ranked[:opts.TopK]
	}
	st.Count("signals_kept", int64(len(ranked)))
	st.End()

	st = opts.Tracer.StartStage(StageLink)
	signals := make([]Signal, len(ranked))
	known := 0
	prof.DoStage(ctx, StageLink, func() {
		var tidBuf []txdb.TID
		for i, r := range ranked {
			c := r.Cluster
			drugs := dict.SortedNames(c.Target.Antecedent)
			reacs := dict.SortedNames(c.Target.Consequent)
			tidBuf = db.TIDs(c.Target.Complete(), tidBuf)
			ids := make([]string, len(tidBuf))
			nSerious := 0
			for j, tid := range tidBuf {
				ids[j] = db.Tx(tid).ReportID
				if serious[ids[j]] {
					nSerious++
				}
			}
			sort.Strings(ids)
			seriousShare := 0.0
			if len(ids) > 0 {
				seriousShare = float64(nSerious) / float64(len(ids))
			}
			signals[i] = Signal{
				Rank:         i + 1,
				Score:        r.Score,
				Drugs:        drugs,
				Reactions:    reacs,
				Support:      c.Target.Support,
				Confidence:   c.Target.Confidence,
				Lift:         c.Target.Lift,
				SupportType:  assoc.Classify(db, c.Target.Complete()),
				Cluster:      c,
				Known:        opts.Knowledge.Lookup(drugs),
				SeriousShare: seriousShare,
				SOCs:         meddra.ClassifyAll(reacs),
				ReportIDs:    ids,
			}
		}
		for i := range signals {
			if signals[i].Known != nil {
				known++
			}
		}
	})
	st.Count("signals", int64(len(signals)))
	st.Count("known", int64(known))
	st.Count("novel", int64(len(signals)-known))
	st.End()

	return &Analysis{
		Stats:      db.Stats(),
		Cleaning:   cstats,
		Counts:     counts,
		Signals:    signals,
		db:         db,
		dict:       dict,
		reports:    byID,
		reportList: reports,
	}, nil
}

// RunQuarter is a convenience wrapper: assemble the quarter's reports
// and Run.
func RunQuarter(q *faers.Quarter, opts Options) (*Analysis, error) {
	return Run(q.Reports(), opts)
}

// RunContext is Run with request-scoped span bridging: when ctx
// carries an active trace span (see obs.StartSpan), the run's stage
// trace is attached to it as child spans named "stage:<name>", so a
// mining-backed request (or a traced startup mine) is explainable in
// the same journal as store-backed serving. A tracer is supplied
// automatically when the caller did not set one; a context without an
// active span behaves exactly like Run.
func RunContext(ctx context.Context, reports []faers.Report, opts Options) (*Analysis, error) {
	// The core/mine failpoint sits ahead of the pipeline so chaos runs
	// can stall or fail a quarter's mining without touching real data.
	if err := resilience.Inject(resilience.FPMine); err != nil {
		return nil, fmt.Errorf("core: mining aborted: %w", err)
	}
	span := obs.ActiveSpan(ctx)
	if span != nil && opts.Tracer == nil {
		opts.Tracer = obs.NewTracer(nil)
	}
	// The caller may reuse a tracer across runs; bridge only the
	// stages this run adds.
	base := opts.Tracer.Len()
	a, err := run(ctx, reports, opts)
	if err == nil && span != nil {
		if recs := opts.Tracer.Records(); base < len(recs) {
			obs.AttachStageRecords(ctx, recs[base:])
		}
	}
	return a, err
}

// RunQuarterContext is RunQuarter with span bridging (see RunContext).
func RunQuarterContext(ctx context.Context, q *faers.Quarter, opts Options) (*Analysis, error) {
	return RunContext(ctx, q.Reports(), opts)
}

// FilterSignals returns the signals mentioning the given drug or
// reaction name — the search behaviour of the interactive interface
// (Section 4.1). Matching is case-insensitive: cleaned drug names are
// upper-case and reaction terms sentence-case, and a user searching
// "aspirin" means both.
func (a *Analysis) FilterSignals(name string) []Signal {
	var out []Signal
	for _, s := range a.Signals {
		if containsFold(s.Drugs, name) || containsFold(s.Reactions, name) {
			out = append(out, s)
		}
	}
	return out
}

// NovelSignals returns signals absent from the knowledge base — the
// "unknown drug-drug interactions" the interestingness preference
// targets.
func (a *Analysis) NovelSignals() []Signal {
	var out []Signal
	for _, s := range a.Signals {
		if s.Known == nil {
			out = append(out, s)
		}
	}
	return out
}

// SignalsBySOC returns the signals whose reactions touch the given
// system organ class — organ-system triage for the interactive
// interface.
func (a *Analysis) SignalsBySOC(soc meddra.SOC) []Signal {
	var out []Signal
	for _, s := range a.Signals {
		for _, c := range s.SOCs {
			if c == soc {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// SeriousSignals returns signals whose supporting reports carry a
// severe outcome at least as often as minShare — the "interactions
// that may lead to particularly severe adverse reactions" filter of
// Section 4.1.
func (a *Analysis) SeriousSignals(minShare float64) []Signal {
	var out []Signal
	for _, s := range a.Signals {
		if s.SeriousShare >= minShare {
			out = append(out, s)
		}
	}
	return out
}

func containsFold(s []string, v string) bool {
	for _, x := range s {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}
